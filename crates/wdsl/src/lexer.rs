//! Tokenizer for the workload DSL.
//!
//! The lexer is a single forward pass producing a `Vec<Token>`; `#`
//! starts a comment running to end of line. Integer literals are
//! decimal `u64`. Identifiers and keywords share one token kind — the
//! parser decides which identifiers are reserved, so the token stream
//! stays simple.

use crate::error::{DslError, Pos};

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source position of the token's first character.
    pub pos: Pos,
}

/// The token kinds of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `kernel`, `frontier`, …).
    Ident(String),
    /// Decimal integer literal.
    Int(u64),
    /// Double-quoted string literal (no escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(n) => format!("integer {n}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("'{}'", other.glyph()),
        }
    }

    fn glyph(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Assign => "=",
            TokenKind::DotDot => "..",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Amp => "&",
            TokenKind::AmpAmp => "&&",
            TokenKind::Pipe => "|",
            TokenKind::PipePipe => "||",
            TokenKind::Bang => "!",
            _ => "?",
        }
    }
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Reports the first unexpected character or an integer literal that
/// overflows `u64`, with its position.
pub fn lex(src: &str) -> Result<Vec<Token>, DslError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token { kind: $kind, pos: Pos { line, col } });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push!(TokenKind::LParen, 1),
            b')' => push!(TokenKind::RParen, 1),
            b'{' => push!(TokenKind::LBrace, 1),
            b'}' => push!(TokenKind::RBrace, 1),
            b'[' => push!(TokenKind::LBracket, 1),
            b']' => push!(TokenKind::RBracket, 1),
            b',' => push!(TokenKind::Comma, 1),
            b';' => push!(TokenKind::Semi, 1),
            b'+' => push!(TokenKind::Plus, 1),
            b'-' => push!(TokenKind::Minus, 1),
            b'*' => push!(TokenKind::Star, 1),
            b'/' => push!(TokenKind::Slash, 1),
            b'%' => push!(TokenKind::Percent, 1),
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push!(TokenKind::DotDot, 2);
                } else {
                    return Err(unexpected(line, col, '.'));
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(TokenKind::EqEq, 2);
                } else {
                    push!(TokenKind::Assign, 1);
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(TokenKind::Ne, 2);
                } else {
                    push!(TokenKind::Bang, 1);
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'<') => push!(TokenKind::Shl, 2),
                Some(&b'=') => push!(TokenKind::Le, 2),
                _ => push!(TokenKind::Lt, 1),
            },
            b'>' => match bytes.get(i + 1) {
                Some(&b'>') => push!(TokenKind::Shr, 2),
                Some(&b'=') => push!(TokenKind::Ge, 2),
                _ => push!(TokenKind::Gt, 1),
            },
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(TokenKind::AmpAmp, 2);
                } else {
                    push!(TokenKind::Amp, 1);
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(TokenKind::PipePipe, 2);
                } else {
                    push!(TokenKind::Pipe, 1);
                }
            }
            b'"' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' && bytes[end] != b'\n' {
                    end += 1;
                }
                if end >= bytes.len() || bytes[end] != b'"' {
                    return Err(DslError::Lex {
                        pos: Pos { line, col },
                        message: "unterminated string literal".to_string(),
                    });
                }
                let s = String::from_utf8_lossy(&bytes[start..end]).into_owned();
                let len = end + 1 - i;
                push!(TokenKind::Str(s), len);
            }
            b'0'..=b'9' => {
                let start = i;
                let mut end = i;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                let text = std::str::from_utf8(&bytes[start..end]).unwrap_or("");
                let value: u64 = text.parse().map_err(|_| DslError::Lex {
                    pos: Pos { line, col },
                    message: format!("integer literal '{text}' does not fit in u64"),
                })?;
                let len = end - start;
                push!(TokenKind::Int(value), len);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let s = String::from_utf8_lossy(&bytes[start..end]).into_owned();
                let len = end - start;
                push!(TokenKind::Ident(s), len);
            }
            other => return Err(unexpected(line, col, other as char)),
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: Pos { line, col } });
    Ok(tokens)
}

fn unexpected(line: u32, col: u32, c: char) -> DslError {
    DslError::Lex { pos: Pos { line, col }, message: format!("unexpected character '{c}'") }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_program_fragment() {
        let ks = kinds("let a = tb * 32; # chunk start\nif a <= 7 { yield addr(r, a); }");
        assert!(ks.contains(&TokenKind::Ident("let".into())));
        assert!(ks.contains(&TokenKind::Int(32)));
        assert!(ks.contains(&TokenKind::Le));
        assert!(!ks.iter().any(|k| matches!(k, TokenKind::Ident(s) if s == "chunk")));
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(
            kinds("<< >> <= >= == != && || ..")[..9],
            [
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::DotDot,
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("a\n  bb").expect("lexes");
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("\"bfs-sweep\"")[0], TokenKind::Str("bfs-sweep".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("\"oops").expect_err("must fail");
        assert!(err.to_string().contains("unterminated string"), "{err}");
    }

    #[test]
    fn overflowing_integer_is_an_error() {
        let err = lex("99999999999999999999999").expect_err("must fail");
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn stray_character_is_an_error() {
        let err = lex("a @ b").expect_err("must fail");
        assert_eq!(err.stage(), "lex");
        assert!(err.to_string().contains('@'), "{err}");
    }

    #[test]
    fn lone_dot_is_an_error() {
        assert!(lex("a . b").is_err());
    }
}
