//! [`CompiledWorkload`]: a `.dsl` file as a drop-in [`Workload`].
//!
//! This is the seam that routes `Workload → TbProgram` through the
//! compiled path: parse → resolve → compile once, then serve
//! `tb_program` requests from the bytecode VM (or, in
//! [`ExecMode::Interp`], from the reference interpreter — the
//! cross-verification oracle). The legacy generators stay available
//! behind the same trait, so benches and CI can diff the two paths.

use std::sync::Arc;

use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};
use workloads::layout::Region;
use workloads::{HostKernel, Scale, Workload};

use crate::bytecode::CompiledKernel;
use crate::compile::compile;
use crate::error::DslError;
use crate::interp::interpret_tb;
use crate::parser::parse;
use crate::resolve::{resolve, ResolvedWorkload};
use crate::vm::run_compiled;

/// Which back end serves `tb_program` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The verified bytecode VM (the hot path).
    #[default]
    Vm,
    /// The reference AST interpreter (the oracle; slower).
    Interp,
}

impl ExecMode {
    /// Short tag for reports ("vm" / "interp").
    pub fn tag(self) -> &'static str {
        match self {
            ExecMode::Vm => "vm",
            ExecMode::Interp => "interp",
        }
    }
}

/// A fully compiled workload: resolved tables plus verified bytecode,
/// usable anywhere a [`Workload`] is.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    resolved: ResolvedWorkload,
    /// Flattened region table for the VM.
    regions: Vec<Region>,
    kernels: Vec<CompiledKernel>,
    mode: ExecMode,
}

impl CompiledWorkload {
    /// Compiles `.dsl` source text end to end.
    ///
    /// # Errors
    ///
    /// Returns the first error of any pipeline stage (lex, parse,
    /// resolve, bytecode verification).
    pub fn from_source(src: &str, mode: ExecMode) -> Result<Self, DslError> {
        let ast = parse(src)?;
        let resolved = resolve(&ast)?;
        let kernels = compile(&resolved)?;
        let regions = resolved.regions.iter().map(|r| r.region).collect();
        Ok(CompiledWorkload { resolved, regions, kernels, mode })
    }

    /// The same workload served by the other/selected back end.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Which back end serves programs.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The resolved form (tables, host list, kernel trees).
    pub fn resolved(&self) -> &ResolvedWorkload {
        &self.resolved
    }

    /// The compiled kernels, in declaration order.
    pub fn kernels(&self) -> &[CompiledKernel] {
        &self.kernels
    }

    /// Fallible program generation — the structured-error twin of
    /// [`ProgramSource::tb_program`].
    ///
    /// # Errors
    ///
    /// Returns [`DslError::Runtime`] for unknown kernel kinds and for
    /// program faults (out-of-bounds data index, division by zero, fuel
    /// exhaustion), identically for both back ends.
    pub fn try_tb_program(
        &self,
        kind: KernelKindId,
        param: u64,
        tb: u32,
    ) -> Result<TbProgram, DslError> {
        match self.mode {
            ExecMode::Vm => {
                let kernel = self
                    .kernels
                    .iter()
                    .find(|k| k.kind == kind)
                    .ok_or_else(|| unknown_kind(&self.resolved.name, kind))?;
                run_compiled(&self.regions, &self.resolved.datas, kernel, param, tb)
            }
            ExecMode::Interp => {
                let kernel = self
                    .resolved
                    .kernel(kind)
                    .ok_or_else(|| unknown_kind(&self.resolved.name, kind))?;
                interpret_tb(&self.resolved, kernel, param, tb)
            }
        }
    }
}

fn unknown_kind(workload: &str, kind: KernelKindId) -> DslError {
    DslError::Runtime {
        kernel: workload.to_string(),
        message: format!("no kernel with kind {}", kind.0),
    }
}

impl ProgramSource for CompiledWorkload {
    /// # Panics
    ///
    /// `ProgramSource` is infallible by contract (program generation is
    /// a pure function the engine may call at any point), so a runtime
    /// fault in a *checked-in* program — which the corpus tests and the
    /// CI gate make unreachable — surfaces as a panic carrying the
    /// structured error's message. The fallible entry point is
    /// [`CompiledWorkload::try_tb_program`].
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match self.try_tb_program(kind, param, tb_index) {
            Ok(p) => p,
            Err(e) => panic!("workload-DSL program failed: {e}"),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        self.resolved.kernel(kind).map_or_else(|| format!("kind-{}", kind.0), |k| k.name.clone())
    }
}

impl Workload for CompiledWorkload {
    fn name(&self) -> &str {
        &self.resolved.name
    }

    fn input(&self) -> String {
        self.resolved.input.clone()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        self.resolved.hosts.clone()
    }
}

/// Compiles a generator workload's DSL port, if it provides one.
///
/// # Errors
///
/// Propagates compilation errors from the workload's `dsl_text`.
pub fn compile_workload(
    w: &dyn Workload,
    mode: ExecMode,
) -> Result<Option<CompiledWorkload>, DslError> {
    match w.dsl_text() {
        None => Ok(None),
        Some(src) => CompiledWorkload::from_source(&src, mode).map(Some),
    }
}

/// The full suite served through the compiled path: every workload of
/// [`workloads::suite_seeded`] replaced by its compiled DSL port.
///
/// # Errors
///
/// Returns [`DslError`] if a suite workload lacks a DSL port or its
/// port fails to compile — both are repo bugs the CI corpus gate
/// catches.
pub fn compiled_suite_seeded(
    scale: Scale,
    seed: u64,
    mode: ExecMode,
) -> Result<Vec<Arc<dyn Workload>>, DslError> {
    let mut out: Vec<Arc<dyn Workload>> = Vec::new();
    for w in workloads::suite_seeded(scale, seed) {
        let compiled = compile_workload(w.as_ref(), mode)?.ok_or_else(|| DslError::Resolve {
            line: 0,
            message: format!("suite workload '{}' has no DSL port", w.full_name()),
        })?;
        out.push(Arc::new(compiled));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
workload "toy" input "x";
region vals[64, 4];
host kind = 0 param = 0 tbs = 2 threads = 32 regs = 8 smem = 0;
kernel 0 "toy-sweep" threads = 32 {
    let a = tb * 32;
    load_slice vals, a, 32;
    launch 1, a, 1, 32, 8, 0;
}
kernel 1 "toy-child" threads = 32 {
    load_slice vals, param, 32;
    compute 4;
}
"#;

    #[test]
    fn serves_programs_through_both_backends_identically() {
        let vm = CompiledWorkload::from_source(TOY, ExecMode::Vm).expect("compiles");
        let interp = vm.clone().with_mode(ExecMode::Interp);
        assert_eq!(vm.full_name(), "toy-x");
        for kind in [KernelKindId(0), KernelKindId(1)] {
            for tb in 0..2 {
                assert_eq!(vm.try_tb_program(kind, 0, tb), interp.try_tb_program(kind, 0, tb));
            }
        }
    }

    #[test]
    fn child_kernels_are_reachable_via_launchspec() {
        let w = CompiledWorkload::from_source(TOY, ExecMode::Vm).expect("compiles");
        let hk = w.host_kernels()[0];
        let parent = w.tb_program(hk.kind, hk.param, 0);
        let launch = parent.launches().next().expect("parent launches");
        let child = w.tb_program(launch.kind, launch.param, 0);
        assert!(!child.is_empty());
        assert_eq!(w.kind_name(launch.kind), "toy-child");
    }

    #[test]
    fn unknown_kind_is_a_structured_error() {
        let w = CompiledWorkload::from_source(TOY, ExecMode::Vm).expect("compiles");
        let err = w.try_tb_program(KernelKindId(9), 0, 0).expect_err("must fail");
        assert!(err.to_string().contains("no kernel with kind 9"), "{err}");
    }

    #[test]
    fn pipeline_errors_surface_per_stage() {
        for (src, stage) in [
            ("workload @", "lex"),
            ("workload \"w\" kernel", "parse"),
            ("workload \"w\"; kernel 0 \"k\" threads = 32 { compute x; }", "resolve"),
        ] {
            let err = CompiledWorkload::from_source(src, ExecMode::Vm).expect_err("must fail");
            assert_eq!(err.stage(), stage, "{src}: {err}");
        }
    }
}
