//! Structured errors for every stage of the workload-compilation
//! pipeline.
//!
//! Every fallible entry point of this crate returns [`DslError`] — the
//! lexer, the parser, the resolver, the bytecode verifier, and both
//! execution back ends (the reference interpreter and the VM). Nothing
//! in the pipeline unwraps: a malformed `.dsl` file or a program that
//! indexes a data array out of bounds surfaces as a value the caller can
//! print, match on, or attach to a CI artifact.

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced by the DSL pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// The lexer met a character or literal it cannot tokenize.
    Lex {
        /// Where in the source text.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Where in the source text.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// Name resolution or static validation failed (unknown identifier,
    /// duplicate declaration, `yield` outside a gather block, …).
    Resolve {
        /// Source line of the offending construct (0 when structural).
        line: u32,
        /// What went wrong.
        message: String,
    },
    /// The bytecode verifier rejected a compiled kernel. This is an
    /// internal invariant failure — the compiler must only emit code the
    /// verifier accepts — surfaced as an error instead of a panic so a
    /// compiler bug can never take down a sweep.
    Bytecode {
        /// Kernel name.
        kernel: String,
        /// What the verifier rejected.
        message: String,
    },
    /// Program execution failed (identically detectable in the
    /// interpreter and the VM: out-of-bounds data index, division by
    /// zero, or the fuel limit).
    Runtime {
        /// Kernel name.
        kernel: String,
        /// What went wrong.
        message: String,
    },
}

impl DslError {
    /// Short stage tag ("lex", "parse", "resolve", "bytecode",
    /// "runtime") for log grepping.
    pub fn stage(&self) -> &'static str {
        match self {
            DslError::Lex { .. } => "lex",
            DslError::Parse { .. } => "parse",
            DslError::Resolve { .. } => "resolve",
            DslError::Bytecode { .. } => "bytecode",
            DslError::Runtime { .. } => "runtime",
        }
    }
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            DslError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            DslError::Resolve { line, message } => {
                if *line == 0 {
                    write!(f, "resolve error: {message}")
                } else {
                    write!(f, "resolve error at line {line}: {message}")
                }
            }
            DslError::Bytecode { kernel, message } => {
                write!(f, "bytecode verification failed in kernel '{kernel}': {message}")
            }
            DslError::Runtime { kernel, message } => {
                write!(f, "runtime error in kernel '{kernel}': {message}")
            }
        }
    }
}

impl std::error::Error for DslError {}

/// Constructors shared by the interpreter and the VM, so both back ends
/// produce *identical* error values for the same fault — the property
/// the differential fuzzer relies on when a randomized program happens
/// to be faulty.
pub(crate) mod runtime {
    use super::DslError;

    pub(crate) fn data_oob(kernel: &str, data: &str, index: u64, len: usize) -> DslError {
        DslError::Runtime {
            kernel: kernel.to_string(),
            message: format!("data '{data}' index {index} out of bounds ({len} elements)"),
        }
    }

    pub(crate) fn div_by_zero(kernel: &str) -> DslError {
        DslError::Runtime { kernel: kernel.to_string(), message: "division by zero".to_string() }
    }

    pub(crate) fn fuel_exhausted(kernel: &str) -> DslError {
        DslError::Runtime {
            kernel: kernel.to_string(),
            message: "fuel exhausted (runaway loop?)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_position() {
        let e =
            DslError::Parse { pos: Pos { line: 3, col: 7 }, message: "expected ';'".to_string() };
        assert_eq!(e.to_string(), "parse error at 3:7: expected ';'");
        assert_eq!(e.stage(), "parse");
    }

    #[test]
    fn runtime_constructors_are_stable() {
        let a = runtime::data_oob("k", "d", 9, 4);
        let b = runtime::data_oob("k", "d", 9, 4);
        assert_eq!(a, b);
        assert!(a.to_string().contains("index 9 out of bounds (4 elements)"));
    }
}
