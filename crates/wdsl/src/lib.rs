//! Workload DSL: a small language for TB-program generators, with a
//! compiled bytecode path and a reference interpreter.
//!
//! The paper's benchmark workloads describe, per thread block, a short
//! program of memory operations, compute phases, and device-side child
//! launches. This crate lets those descriptions live as *source text*
//! instead of Rust generator code:
//!
//! ```text
//! .dsl text ──lex──► tokens ──parse──► AST ──resolve──► resolved tree
//!                                                        │        │
//!                                              interpreter        compiler ──verify──► bytecode
//!                                                   (oracle)                              │
//!                                                        ▼                                ▼
//!                                                    TbProgram  ◄────── stack VM (hot path)
//! ```
//!
//! Both back ends consume the same resolved tree, share one arithmetic
//! kernel ([`resolve::eval_bin`]), one op-emission layer (`emit`), and
//! one set of error constructors — so they agree byte-for-byte on every
//! program *and* on every fault, which the differential fuzzer
//! ([`difftest`]) and the CI `dsl-differential` job enforce. The VM's
//! dispatch loop is bounds-check-free: the [`bytecode`] verifier proves
//! stack depths and id ranges per instruction at compile time, and
//! [`CompiledKernel`]s are only constructible through the verifying
//! compiler.
//!
//! Entry points:
//! - [`CompiledWorkload::from_source`] — compile `.dsl` text into a
//!   drop-in [`workloads::Workload`].
//! - [`compile_workload`] / [`compiled_suite_seeded`] — route the
//!   generator suite through its checked-in DSL ports.
//! - [`difftest::fuzz_case`] — one seeded VM-vs-interpreter comparison.

#![deny(clippy::unwrap_used)]

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod difftest;
mod emit;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod source;
pub mod vm;

pub use bytecode::CompiledKernel;
pub use compile::{compile, compile_kernel};
pub use error::{DslError, Pos};
pub use interp::interpret_tb;
pub use parser::parse;
pub use resolve::{resolve, ResolvedWorkload};
pub use source::{compile_workload, compiled_suite_seeded, CompiledWorkload, ExecMode};
pub use vm::run_compiled;
