//! Name resolution and static validation: [`WorkloadAst`] →
//! [`ResolvedWorkload`].
//!
//! The resolved form is the single semantic source of truth that BOTH
//! execution back ends consume: the reference interpreter walks
//! [`RStmt`]/[`RExpr`] directly, and the bytecode compiler lowers the
//! same trees. Because everything name- or layout-dependent is decided
//! here (variable slots, region base addresses, constant values,
//! `len()` folding), the two back ends cannot disagree about what a
//! program *means* — only about how they execute it, which the
//! differential tests pin down.
//!
//! Region layout reuses [`workloads::layout::Layout`] verbatim, so a DSL
//! port of a generator places its arrays at byte-identical addresses.

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::KernelKindId;
use workloads::layout::{Layout, Region};
use workloads::HostKernel;

use crate::ast::{BinOp, Builtin, Expr, Stmt, StmtKind, WorkloadAst};
use crate::error::DslError;

/// Maximum number of threads a kernel or launch may request.
pub const MAX_THREADS: u32 = 1024;

/// A resolved expression. Identifiers are gone: variables are slot
/// indices, constants and `len()` are literals, data arrays and regions
/// are dense ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RExpr {
    /// Literal value (also: folded constants and `len()`).
    Lit(u64),
    /// Local variable slot.
    Slot(u32),
    /// The kernel's `param` value.
    Param,
    /// The TB index within the grid.
    Tb,
    /// `data_id[index]` — bounds-checked at runtime.
    Data(u32, Box<RExpr>),
    /// Byte address of element `index` of region `region_id`
    /// (`base + index * elem_bytes`, wrapping — the corpus only uses
    /// in-bounds indices, and keeping it total keeps both back ends
    /// trivially identical).
    Addr(u32, Box<RExpr>),
    /// `min`/`max`/`div_ceil`.
    Call(Builtin, Box<RExpr>, Box<RExpr>),
    /// Logical not.
    Not(Box<RExpr>),
    /// Binary operation.
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

/// A resolved statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RStmt {
    /// Store into a slot (`let` and assignment are identical once slots
    /// are assigned).
    Set(u32, RExpr),
    /// Conditional.
    If(RExpr, Vec<RStmt>, Vec<RStmt>),
    /// Counted loop: slot iterates `lo..hi` (bounds evaluated once).
    For(u32, RExpr, RExpr, Vec<RStmt>),
    /// Condition loop.
    While(RExpr, Vec<RStmt>),
    /// End the program early.
    Return,
    /// Emit `TbOp::Compute`.
    Compute(RExpr),
    /// Emit `TbOp::ComputeMasked`.
    ComputeMasked(RExpr, RExpr),
    /// Emit `TbOp::Sync`.
    Sync,
    /// Emit a shared-memory staging access.
    Shared,
    /// Emit a coalesced slice access of region `region`.
    Slice {
        /// `true` for a store.
        store: bool,
        /// Region id.
        region: u32,
        /// First element index.
        start: RExpr,
        /// Element count.
        count: RExpr,
    },
    /// Emit a broadcast access of one region element.
    Bcast {
        /// `true` for a store.
        store: bool,
        /// Region id.
        region: u32,
        /// Element index.
        index: RExpr,
    },
    /// Collect per-thread addresses (`yield`) and emit one gather or
    /// scatter op (none when no addresses were yielded).
    Addrs {
        /// `true` for a scatter.
        store: bool,
        /// Body; may contain control flow and `Yield`.
        body: Vec<RStmt>,
    },
    /// Append one address to the active gather/scatter collection.
    Yield(RExpr),
    /// Emit `TbOp::Launch`.
    Launch {
        /// Child kernel kind.
        kind: RExpr,
        /// Child parameter.
        param: RExpr,
        /// Child grid size.
        num_tbs: RExpr,
        /// Threads per child TB.
        threads: RExpr,
        /// Registers per thread.
        regs: RExpr,
        /// Shared-memory bytes per TB.
        smem: RExpr,
    },
}

/// A named data array.
#[derive(Debug, Clone)]
pub struct RData {
    /// Name in the source text (for error messages).
    pub name: String,
    /// The values.
    pub values: Arc<[u64]>,
}

/// A named memory region with its resolved placement.
#[derive(Debug, Clone)]
pub struct RRegion {
    /// Name in the source text.
    pub name: String,
    /// The allocated region (same bump allocator as the generators).
    pub region: Region,
}

/// One resolved kernel definition.
#[derive(Debug, Clone)]
pub struct RKernel {
    /// Workload-local kernel kind.
    pub kind: KernelKindId,
    /// Kernel name for traces.
    pub name: String,
    /// Threads per TB (drives slice coalescing exactly like
    /// `OpBuilder::new(threads)`).
    pub threads: u32,
    /// Number of variable slots the body needs.
    pub slots: u32,
    /// The body.
    pub body: Vec<RStmt>,
}

/// A fully resolved workload, ready for interpretation or compilation.
#[derive(Debug, Clone)]
pub struct ResolvedWorkload {
    /// Application name.
    pub name: String,
    /// Input name (may be empty).
    pub input: String,
    /// Regions in declaration (= layout) order.
    pub regions: Vec<RRegion>,
    /// Data arrays in declaration order.
    pub datas: Vec<RData>,
    /// Host launch list.
    pub hosts: Vec<HostKernel>,
    /// Kernels in declaration order (kinds are unique).
    pub kernels: Vec<RKernel>,
}

impl ResolvedWorkload {
    /// The kernel with the given kind, if any.
    pub fn kernel(&self, kind: KernelKindId) -> Option<&RKernel> {
        self.kernels.iter().find(|k| k.kind == kind)
    }
}

/// Resolves a parsed workload.
///
/// # Errors
///
/// Reports the first unknown or duplicate name, non-constant constant
/// expression, out-of-range declaration value, or structural violation
/// (`yield` outside `gather`, ops inside `gather`, duplicate kernel
/// kind, host launch of an undefined kind).
pub fn resolve(ast: &WorkloadAst) -> Result<ResolvedWorkload, DslError> {
    Resolver::default().run(ast)
}

fn err(line: u32, message: impl Into<String>) -> DslError {
    DslError::Resolve { line, message: message.into() }
}

#[derive(Default)]
struct Resolver {
    consts: HashMap<String, u64>,
    data_ids: HashMap<String, u32>,
    datas: Vec<RData>,
    region_ids: HashMap<String, u32>,
    regions: Vec<RRegion>,
}

/// Per-kernel variable state: lexical scopes mapping names to slots.
struct Vars {
    scopes: Vec<HashMap<String, u32>>,
    next_slot: u32,
}

impl Vars {
    fn lookup(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }
}

impl Resolver {
    fn run(mut self, ast: &WorkloadAst) -> Result<ResolvedWorkload, DslError> {
        if ast.name.is_empty() {
            return Err(err(0, "workload name must not be empty"));
        }
        // Data arrays first: `len()` is usable in constant expressions.
        for (line, name, values) in &ast.datas {
            self.check_fresh(*line, name)?;
            let id =
                u32::try_from(self.datas.len()).map_err(|_| err(*line, "too many data arrays"))?;
            self.data_ids.insert(name.clone(), id);
            self.datas.push(RData { name: name.clone(), values: values.clone().into() });
        }
        for (line, name, expr) in &ast.consts {
            self.check_fresh(*line, name)?;
            let value = self.const_eval(*line, expr)?;
            self.consts.insert(name.clone(), value);
        }
        let mut layout = Layout::new();
        for (line, name, len, elem) in &ast.regions {
            self.check_fresh(*line, name)?;
            let len = self.const_eval(*line, len)?;
            let elem = self.const_eval(*line, elem)?;
            let elem = u32::try_from(elem).ok().filter(|&e| e > 0).ok_or_else(|| {
                err(*line, format!("region '{name}' element size {elem} is not in 1..=u32"))
            })?;
            if len.checked_mul(u64::from(elem)).is_none() {
                return Err(err(*line, format!("region '{name}' overflows the address space")));
            }
            let id =
                u32::try_from(self.regions.len()).map_err(|_| err(*line, "too many regions"))?;
            self.region_ids.insert(name.clone(), id);
            self.regions.push(RRegion { name: name.clone(), region: layout.alloc(len, elem) });
        }

        let mut kernels: Vec<RKernel> = Vec::new();
        for decl in &ast.kernels {
            let kind = self.const_eval(decl.line, &decl.kind)?;
            let kind = u16::try_from(kind)
                .map_err(|_| err(decl.line, format!("kernel kind {kind} does not fit u16")))?;
            if kernels.iter().any(|k| k.kind.0 == kind) {
                return Err(err(decl.line, format!("duplicate kernel kind {kind}")));
            }
            let threads = self.threads_value(decl.line, &decl.threads)?;
            let mut vars = Vars { scopes: vec![HashMap::new()], next_slot: 0 };
            let body = self.block(&decl.body, &mut vars, false)?;
            kernels.push(RKernel {
                kind: KernelKindId(kind),
                name: decl.name.clone(),
                threads,
                slots: vars.next_slot,
                body,
            });
        }
        if kernels.is_empty() {
            return Err(err(0, "workload defines no kernels"));
        }

        let mut hosts = Vec::new();
        for h in &ast.hosts {
            let kind = self.const_eval(h.line, &h.kind)?;
            let kind = u16::try_from(kind)
                .map_err(|_| err(h.line, format!("host kernel kind {kind} does not fit u16")))?;
            if !kernels.iter().any(|k| k.kind.0 == kind) {
                return Err(err(h.line, format!("host launches undefined kernel kind {kind}")));
            }
            let param = self.const_eval(h.line, &h.param)?;
            let num_tbs = self.u32_value(h.line, &h.tbs, "host tbs")?;
            if num_tbs == 0 {
                return Err(err(h.line, "host tbs must be positive"));
            }
            let threads = self.threads_value(h.line, &h.threads)?;
            let regs = self.u32_value(h.line, &h.regs, "host regs")?;
            let smem = self.u32_value(h.line, &h.smem, "host smem")?;
            hosts.push(HostKernel {
                kind: KernelKindId(kind),
                param,
                num_tbs,
                req: ResourceReq::new(threads, regs, smem),
            });
        }
        if hosts.is_empty() {
            return Err(err(0, "workload declares no host launches"));
        }

        Ok(ResolvedWorkload {
            name: ast.name.clone(),
            input: ast.input.clone(),
            regions: self.regions,
            datas: self.datas,
            hosts,
            kernels,
        })
    }

    fn check_fresh(&self, line: u32, name: &str) -> Result<(), DslError> {
        if name == "param" || name == "tb" {
            return Err(err(line, format!("'{name}' is reserved")));
        }
        if self.consts.contains_key(name)
            || self.data_ids.contains_key(name)
            || self.region_ids.contains_key(name)
        {
            return Err(err(line, format!("duplicate declaration of '{name}'")));
        }
        Ok(())
    }

    fn u32_value(&self, line: u32, expr: &Expr, what: &str) -> Result<u32, DslError> {
        let v = self.const_eval(line, expr)?;
        u32::try_from(v).map_err(|_| err(line, format!("{what} value {v} does not fit u32")))
    }

    fn threads_value(&self, line: u32, expr: &Expr) -> Result<u32, DslError> {
        let v = self.const_eval(line, expr)?;
        match u32::try_from(v) {
            Ok(t) if (1..=MAX_THREADS).contains(&t) => Ok(t),
            _ => Err(err(line, format!("threads value {v} is not in 1..={MAX_THREADS}"))),
        }
    }

    /// Evaluates a constant expression: literals, previously defined
    /// constants, `len(data)`, builtins and all operators — but nothing
    /// runtime-dependent (`param`, `tb`, variables, `data[i]`, `addr`).
    fn const_eval(&self, line: u32, expr: &Expr) -> Result<u64, DslError> {
        match expr {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => self.consts.get(name).copied().ok_or_else(|| {
                err(line, format!("'{name}' is not a constant (in constant context)"))
            }),
            Expr::Len(name) => self.data_len(line, name),
            Expr::Call(b, x, y) => {
                let x = self.const_eval(line, x)?;
                let y = self.const_eval(line, y)?;
                match b {
                    Builtin::Min => Ok(x.min(y)),
                    Builtin::Max => Ok(x.max(y)),
                    Builtin::DivCeil => {
                        if y == 0 {
                            Err(err(line, "div_ceil by zero in constant expression"))
                        } else {
                            Ok(x.div_ceil(y))
                        }
                    }
                }
            }
            Expr::Not(x) => Ok(u64::from(self.const_eval(line, x)? == 0)),
            Expr::Bin(op, x, y) => {
                let a = self.const_eval(line, x)?;
                let b = self.const_eval(line, y)?;
                match op {
                    BinOp::Div | BinOp::Mod if b == 0 => {
                        Err(err(line, "division by zero in constant expression"))
                    }
                    _ => Ok(eval_bin(*op, a, b)),
                }
            }
            Expr::Index(..) | Expr::Addr(..) => {
                Err(err(line, "data indexing and addr() are not allowed in constant context"))
            }
        }
    }

    // ---- kernel bodies --------------------------------------------------

    fn block(
        &self,
        stmts: &[Stmt],
        vars: &mut Vars,
        in_gather: bool,
    ) -> Result<Vec<RStmt>, DslError> {
        vars.scopes.push(HashMap::new());
        let out = self.stmts(stmts, vars, in_gather);
        vars.scopes.pop();
        out
    }

    fn stmts(
        &self,
        stmts: &[Stmt],
        vars: &mut Vars,
        in_gather: bool,
    ) -> Result<Vec<RStmt>, DslError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.stmt(s, vars, in_gather)?);
        }
        Ok(out)
    }

    fn stmt(&self, stmt: &Stmt, vars: &mut Vars, in_gather: bool) -> Result<RStmt, DslError> {
        let line = stmt.line;
        let emits = |what: &str| -> DslError {
            err(line, format!("'{what}' is not allowed inside gather/scatter blocks"))
        };
        match &stmt.kind {
            StmtKind::Let(name, value) => {
                if name == "param" || name == "tb" {
                    return Err(err(line, format!("'{name}' is reserved")));
                }
                // Resolve the initializer BEFORE the name is in scope, so
                // `let x = x + 1;` refers to an outer `x` (or errors).
                let value = self.expr(line, value, vars)?;
                let slot = vars.next_slot;
                vars.next_slot += 1;
                if let Some(scope) = vars.scopes.last_mut() {
                    scope.insert(name.clone(), slot);
                }
                Ok(RStmt::Set(slot, value))
            }
            StmtKind::Assign(name, value) => {
                let slot = vars.lookup(name).ok_or_else(|| {
                    err(line, format!("assignment to undeclared variable '{name}'"))
                })?;
                let value = self.expr(line, value, vars)?;
                Ok(RStmt::Set(slot, value))
            }
            StmtKind::If(cond, then, otherwise) => Ok(RStmt::If(
                self.expr(line, cond, vars)?,
                self.block(then, vars, in_gather)?,
                self.block(otherwise, vars, in_gather)?,
            )),
            StmtKind::For(name, lo, hi, body) => {
                if name == "param" || name == "tb" {
                    return Err(err(line, format!("'{name}' is reserved")));
                }
                let lo = self.expr(line, lo, vars)?;
                let hi = self.expr(line, hi, vars)?;
                let slot = vars.next_slot;
                vars.next_slot += 1;
                vars.scopes.push(HashMap::from([(name.clone(), slot)]));
                let body = self.stmts(body, vars, in_gather);
                vars.scopes.pop();
                Ok(RStmt::For(slot, lo, hi, body?))
            }
            StmtKind::While(cond, body) => {
                Ok(RStmt::While(self.expr(line, cond, vars)?, self.block(body, vars, in_gather)?))
            }
            StmtKind::Return => {
                if in_gather {
                    Err(emits("return"))
                } else {
                    Ok(RStmt::Return)
                }
            }
            StmtKind::Compute(c) => {
                if in_gather {
                    Err(emits("compute"))
                } else {
                    Ok(RStmt::Compute(self.expr(line, c, vars)?))
                }
            }
            StmtKind::ComputeMasked(c, a) => {
                if in_gather {
                    Err(emits("compute_masked"))
                } else {
                    Ok(RStmt::ComputeMasked(self.expr(line, c, vars)?, self.expr(line, a, vars)?))
                }
            }
            StmtKind::Sync => {
                if in_gather {
                    Err(emits("sync"))
                } else {
                    Ok(RStmt::Sync)
                }
            }
            StmtKind::Shared => {
                if in_gather {
                    Err(emits("shared"))
                } else {
                    Ok(RStmt::Shared)
                }
            }
            StmtKind::Slice { store, region, start, count } => {
                if in_gather {
                    return Err(emits(if *store { "store_slice" } else { "load_slice" }));
                }
                Ok(RStmt::Slice {
                    store: *store,
                    region: self.region_id(line, region)?,
                    start: self.expr(line, start, vars)?,
                    count: self.expr(line, count, vars)?,
                })
            }
            StmtKind::Bcast { store, region, index } => {
                if in_gather {
                    return Err(emits(if *store { "store_bcast" } else { "load_bcast" }));
                }
                Ok(RStmt::Bcast {
                    store: *store,
                    region: self.region_id(line, region)?,
                    index: self.expr(line, index, vars)?,
                })
            }
            StmtKind::Addrs { store, body } => {
                if in_gather {
                    return Err(err(line, "gather/scatter blocks cannot nest"));
                }
                Ok(RStmt::Addrs { store: *store, body: self.block(body, vars, true)? })
            }
            StmtKind::Yield(value) => {
                if in_gather {
                    Ok(RStmt::Yield(self.expr(line, value, vars)?))
                } else {
                    Err(err(line, "'yield' is only allowed inside gather/scatter blocks"))
                }
            }
            StmtKind::Launch { kind, param, num_tbs, threads, regs, smem } => {
                if in_gather {
                    return Err(emits("launch"));
                }
                Ok(RStmt::Launch {
                    kind: self.expr(line, kind, vars)?,
                    param: self.expr(line, param, vars)?,
                    num_tbs: self.expr(line, num_tbs, vars)?,
                    threads: self.expr(line, threads, vars)?,
                    regs: self.expr(line, regs, vars)?,
                    smem: self.expr(line, smem, vars)?,
                })
            }
        }
    }

    fn region_id(&self, line: u32, name: &str) -> Result<u32, DslError> {
        self.region_ids
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown region '{name}'")))
    }

    fn data_id(&self, line: u32, name: &str) -> Result<u32, DslError> {
        self.data_ids
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown data array '{name}'")))
    }

    fn data_len(&self, line: u32, name: &str) -> Result<u64, DslError> {
        let id = self.data_id(line, name)?;
        Ok(self.datas[id as usize].values.len() as u64)
    }

    fn expr(&self, line: u32, expr: &Expr, vars: &Vars) -> Result<RExpr, DslError> {
        match expr {
            Expr::Int(v) => Ok(RExpr::Lit(*v)),
            Expr::Var(name) => {
                if let Some(slot) = vars.lookup(name) {
                    Ok(RExpr::Slot(slot))
                } else if name == "param" {
                    Ok(RExpr::Param)
                } else if name == "tb" {
                    Ok(RExpr::Tb)
                } else if let Some(v) = self.consts.get(name) {
                    Ok(RExpr::Lit(*v))
                } else {
                    Err(err(line, format!("unknown identifier '{name}'")))
                }
            }
            Expr::Index(name, index) => {
                Ok(RExpr::Data(self.data_id(line, name)?, Box::new(self.expr(line, index, vars)?)))
            }
            Expr::Len(name) => Ok(RExpr::Lit(self.data_len(line, name)?)),
            Expr::Addr(name, index) => Ok(RExpr::Addr(
                self.region_id(line, name)?,
                Box::new(self.expr(line, index, vars)?),
            )),
            Expr::Call(b, x, y) => Ok(RExpr::Call(
                *b,
                Box::new(self.expr(line, x, vars)?),
                Box::new(self.expr(line, y, vars)?),
            )),
            Expr::Not(x) => Ok(RExpr::Not(Box::new(self.expr(line, x, vars)?))),
            Expr::Bin(op, x, y) => Ok(RExpr::Bin(
                *op,
                Box::new(self.expr(line, x, vars)?),
                Box::new(self.expr(line, y, vars)?),
            )),
        }
    }
}

/// The shared arithmetic of every total binary operator: wrapping `+`
/// and `*`, saturating `-` (mirroring the generators' `saturating_sub`
/// tail math), total shifts (`0` when the amount is ≥ 64), and 0/1
/// comparisons. `Div`/`Mod` with a zero divisor must be screened by the
/// caller; here they are defined as 0 so the function stays total.
pub fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.saturating_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shl(b as u32)
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::Eq => u64::from(a == b),
        BinOp::Ne => u64::from(a != b),
        BinOp::Lt => u64::from(a < b),
        BinOp::Le => u64::from(a <= b),
        BinOp::Gt => u64::from(a > b),
        BinOp::Ge => u64::from(a >= b),
        // `&&`/`||` on already-evaluated operands (short-circuiting is a
        // control-flow concern each back end handles; the *value* is the
        // same either way because expressions are side-effect free).
        BinOp::And => u64::from(a != 0 && b != 0),
        BinOp::Or => u64::from(a != 0 || b != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn resolve_src(src: &str) -> Result<ResolvedWorkload, DslError> {
        resolve(&parse(src).expect("parses"))
    }

    const HEADER: &str = r#"workload "t";
host kind = 0 param = 0 tbs = 1 threads = 32 regs = 8 smem = 0;
"#;

    fn with_kernel(body: &str) -> String {
        format!("{HEADER}kernel 0 \"k\" threads = 32 {{ {body} }}")
    }

    #[test]
    fn resolves_regions_with_generator_layout() {
        let src = format!(
            "{HEADER}region a[10, 4]; region b[3, 8];\nkernel 0 \"k\" threads = 32 {{ sync; }}"
        );
        let w = resolve_src(&src).expect("resolves");
        let mut layout = Layout::new();
        let a = layout.alloc(10, 4);
        let b = layout.alloc(3, 8);
        assert_eq!(w.regions[0].region, a);
        assert_eq!(w.regions[1].region, b);
    }

    #[test]
    fn consts_fold_and_len_is_literal() {
        let src = "workload \"t\";\ndata d = [1, 2, 3];\nconst N = len(d) * 2;\n\
             host kind = 0 param = N tbs = 1 threads = 32 regs = 8 smem = 0;\n\
             kernel 0 \"k\" threads = 32 { compute N; }";
        let w = resolve_src(src).expect("resolves");
        assert_eq!(w.hosts[0].param, 6);
        assert_eq!(w.kernels[0].body[0], RStmt::Compute(RExpr::Lit(6)));
    }

    #[test]
    fn let_allocates_slots_in_order() {
        let w =
            resolve_src(&with_kernel("let a = 1; let b = a + 1; b = b * 2;")).expect("resolves");
        let k = &w.kernels[0];
        assert_eq!(k.slots, 2);
        assert_eq!(k.body[0], RStmt::Set(0, RExpr::Lit(1)));
        assert!(matches!(&k.body[1], RStmt::Set(1, RExpr::Bin(BinOp::Add, a, _))
                if **a == RExpr::Slot(0)));
        assert!(matches!(&k.body[2], RStmt::Set(1, _)));
    }

    #[test]
    fn block_scoping_hides_inner_lets() {
        let e = resolve_src(&with_kernel("if 1 { let a = 1; } compute a;")).expect_err("must fail");
        assert!(e.to_string().contains("unknown identifier 'a'"), "{e}");
    }

    #[test]
    fn yield_outside_gather_is_rejected() {
        let e = resolve_src(&with_kernel("yield 1;")).expect_err("must fail");
        assert!(e.to_string().contains("only allowed inside gather"), "{e}");
    }

    #[test]
    fn ops_inside_gather_are_rejected() {
        for body in ["gather { sync; }", "gather { compute 1; }", "gather { gather { yield 1; } }"]
        {
            assert!(resolve_src(&with_kernel(body)).is_err(), "{body} must be rejected");
        }
    }

    #[test]
    fn control_flow_inside_gather_is_allowed() {
        let w = resolve_src(&with_kernel(
            "gather { for i in 0 .. 4 { if i % 2 == 0 { yield i * 128; } } }",
        ))
        .expect("resolves");
        assert!(matches!(&w.kernels[0].body[0], RStmt::Addrs { store: false, .. }));
    }

    #[test]
    fn duplicate_kernel_kind_is_rejected() {
        let src = format!(
            "{HEADER}kernel 0 \"a\" threads = 32 {{ sync; }}\n\
             kernel 0 \"b\" threads = 32 {{ sync; }}"
        );
        let e = resolve_src(&src).expect_err("must fail");
        assert!(e.to_string().contains("duplicate kernel kind"), "{e}");
    }

    #[test]
    fn host_of_undefined_kind_is_rejected() {
        let src = "workload \"t\";\n\
                   host kind = 7 param = 0 tbs = 1 threads = 32 regs = 8 smem = 0;\n\
                   kernel 0 \"k\" threads = 32 { sync; }";
        let e = resolve_src(src).expect_err("must fail");
        assert!(e.to_string().contains("undefined kernel kind 7"), "{e}");
    }

    #[test]
    fn reserved_names_cannot_be_bound() {
        assert!(resolve_src(&with_kernel("let tb = 1;")).is_err());
        assert!(resolve_src(&with_kernel("for param in 0 .. 2 { sync; }")).is_err());
    }

    #[test]
    fn eval_bin_matches_generator_arithmetic() {
        assert_eq!(eval_bin(BinOp::Sub, 3, 10), 0); // saturating like chunk_range
        assert_eq!(eval_bin(BinOp::Add, u64::MAX, 2), 1); // wrapping
        assert_eq!(eval_bin(BinOp::Shl, 1, 64), 0); // total shift
        assert_eq!(eval_bin(BinOp::Lt, 2, 3), 1);
        assert_eq!(eval_bin(BinOp::Div, 5, 0), 0); // screened by callers
    }
}
