//! Stack VM: the hot execution path for compiled workload programs.
//!
//! The dispatch loop performs **no bounds checks**: program counter,
//! operand stack, variable slots, literal pool, and the data/region id
//! tables are accessed with `get_unchecked`. Soundness comes from two
//! compile-time facts plus one entry check:
//!
//! 1. The [`crate::bytecode`] verifier proved, per reachable pc, the exact
//!    stack depth and that every jump target, literal/slot/data/region
//!    id, and fall-through stays in range (see that module's docs).
//! 2. [`CompiledKernel`]s are only constructible through
//!    [`crate::compile()`], which runs the verifier.
//! 3. At entry the VM checks the region/data tables it was handed are at
//!    least as large as the tables the code was verified against.
//!
//! Runtime-*valued* indexing (a data-array subscript) stays checked and
//! fails with the same structured [`DslError::Runtime`] values the
//! reference interpreter produces — the differential fuzzer compares
//! both success and failure cases across back ends.

use gpu_sim::program::TbProgram;
use workloads::layout::Region;

use crate::ast::BinOp;
use crate::bytecode::{CompiledKernel, Op};
use crate::emit::{element_addr, EmitCtx};
use crate::error::{runtime, DslError};
use crate::interp::FUEL;
use crate::resolve::{eval_bin, RData};

/// Runs one TB program on the VM.
///
/// # Errors
///
/// Returns the same structured runtime errors as the interpreter (data
/// index out of bounds, division by zero, fuel exhaustion), or a
/// [`DslError::Bytecode`] if `regions`/`datas` are smaller than the
/// tables the kernel was verified against (a caller bug).
pub fn run_compiled(
    regions: &[Region],
    datas: &[RData],
    kernel: &CompiledKernel,
    param: u64,
    tb: u32,
) -> Result<TbProgram, DslError> {
    if regions.len() < kernel.num_regions as usize || datas.len() < kernel.num_datas as usize {
        return Err(DslError::Bytecode {
            kernel: kernel.name.clone(),
            message: format!(
                "tables smaller than verified limits: {} regions (need {}), {} datas (need {})",
                regions.len(),
                kernel.num_regions,
                datas.len(),
                kernel.num_datas
            ),
        });
    }
    let code = kernel.code.as_slice();
    let literals = kernel.literals.as_slice();
    let mut slots = vec![0u64; (kernel.slots.max(1)) as usize];
    let mut stack = vec![0u64; kernel.max_stack as usize];
    let mut sp = 0usize;
    let mut pc = 0usize;
    let mut fuel: u64 = FUEL;
    let mut ctx = EmitCtx::new(kernel.threads);

    // SAFETY for every `get_unchecked` below: the verifier proved that
    // at each reachable pc the operand-stack depth equals `sp`, never
    // exceeds `max_stack` (the allocation size), never underflows, and
    // that every embedded id is within the table the entry check bound.
    macro_rules! pop {
        () => {{
            sp -= 1;
            unsafe { *stack.get_unchecked(sp) }
        }};
    }
    macro_rules! push {
        ($v:expr) => {{
            let v: u64 = $v;
            unsafe {
                *stack.get_unchecked_mut(sp) = v;
            }
            sp += 1;
        }};
    }
    macro_rules! binop {
        ($op:expr) => {{
            let b = pop!();
            let a = pop!();
            push!(eval_bin($op, a, b));
        }};
    }

    loop {
        fuel = fuel.checked_sub(1).ok_or_else(|| runtime::fuel_exhausted(&kernel.name))?;
        // SAFETY: pc starts at 0 (code is verified non-empty), every
        // jump target was range-checked, and fallthrough past the end
        // was rejected for all reachable instructions.
        let op = unsafe { *code.get_unchecked(pc) };
        pc += 1;
        match op {
            Op::Lit(id) => {
                // SAFETY: literal ids verified < literals.len().
                push!(unsafe { *literals.get_unchecked(id as usize) });
            }
            Op::Slot(id) => {
                // SAFETY: slot ids verified < kernel.slots.
                push!(unsafe { *slots.get_unchecked(id as usize) });
            }
            Op::SetSlot(id) => {
                let v = pop!();
                // SAFETY: slot ids verified < kernel.slots.
                unsafe {
                    *slots.get_unchecked_mut(id as usize) = v;
                }
            }
            Op::Param => push!(param),
            Op::Tb => push!(u64::from(tb)),
            Op::Data(id) => {
                let index = pop!();
                // SAFETY: data ids verified < num_datas ≤ datas.len().
                let data = unsafe { datas.get_unchecked(id as usize) };
                let value = data
                    .values
                    .get(usize::try_from(index).unwrap_or(usize::MAX))
                    .copied()
                    .ok_or_else(|| {
                        runtime::data_oob(&kernel.name, &data.name, index, data.values.len())
                    })?;
                push!(value);
            }
            Op::RegionAddr(id) => {
                let index = pop!();
                // SAFETY: region ids verified < num_regions ≤ regions.len().
                let region = unsafe { *regions.get_unchecked(id as usize) };
                push!(element_addr(region, index));
            }
            Op::Min => {
                let b = pop!();
                let a = pop!();
                push!(a.min(b));
            }
            Op::Max => {
                let b = pop!();
                let a = pop!();
                push!(a.max(b));
            }
            Op::DivCeil => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(runtime::div_by_zero(&kernel.name));
                }
                push!(a.div_ceil(b));
            }
            Op::Add => binop!(BinOp::Add),
            Op::Sub => binop!(BinOp::Sub),
            Op::Mul => binop!(BinOp::Mul),
            Op::Div | Op::Mod => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(runtime::div_by_zero(&kernel.name));
                }
                push!(eval_bin(if matches!(op, Op::Div) { BinOp::Div } else { BinOp::Mod }, a, b));
            }
            Op::Shl => binop!(BinOp::Shl),
            Op::Shr => binop!(BinOp::Shr),
            Op::BitAnd => binop!(BinOp::BitAnd),
            Op::BitOr => binop!(BinOp::BitOr),
            Op::Eq => binop!(BinOp::Eq),
            Op::Ne => binop!(BinOp::Ne),
            Op::Lt => binop!(BinOp::Lt),
            Op::Le => binop!(BinOp::Le),
            Op::Gt => binop!(BinOp::Gt),
            Op::Ge => binop!(BinOp::Ge),
            Op::Not => {
                let x = pop!();
                push!(u64::from(x == 0));
            }
            Op::Bool => {
                let x = pop!();
                push!(u64::from(x != 0));
            }
            Op::Jump(t) => pc = t as usize,
            Op::JumpIfZero(t) => {
                if pop!() == 0 {
                    pc = t as usize;
                }
            }
            Op::JumpIfNonZero(t) => {
                if pop!() != 0 {
                    pc = t as usize;
                }
            }
            Op::Ret => break,
            Op::Compute => {
                let cycles = pop!();
                ctx.compute(cycles);
            }
            Op::ComputeMasked => {
                let active = pop!();
                let cycles = pop!();
                ctx.compute_masked(cycles, active);
            }
            Op::Sync => ctx.sync(),
            Op::Shared => ctx.shared(),
            Op::Slice { store, region } => {
                let count = pop!();
                let start = pop!();
                // SAFETY: region ids verified < num_regions ≤ regions.len().
                let region = unsafe { *regions.get_unchecked(region as usize) };
                ctx.slice(store, region, start, count);
            }
            Op::Bcast { store, region } => {
                let index = pop!();
                // SAFETY: region ids verified < num_regions ≤ regions.len().
                let region = unsafe { *regions.get_unchecked(region as usize) };
                ctx.bcast(store, region, index);
            }
            Op::BeginAddrs { store } => ctx.begin_addrs(store),
            Op::EndAddrs => ctx.end_addrs(),
            Op::EmitYield => {
                let addr = pop!();
                ctx.push_addr(addr);
            }
            Op::Launch => {
                let smem = pop!();
                let regs = pop!();
                let threads = pop!();
                let num_tbs = pop!();
                let launch_param = pop!();
                let kind = pop!();
                ctx.launch(kind, launch_param, num_tbs, threads, regs, smem);
            }
        }
    }
    Ok(ctx.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_kernel;
    use crate::interp::interpret_tb;
    use crate::parser::parse;
    use crate::resolve::{resolve, ResolvedWorkload};

    fn setup(src: &str) -> (ResolvedWorkload, Vec<Region>, CompiledKernel) {
        let w = resolve(&parse(src).expect("parses")).expect("resolves");
        let regions: Vec<Region> = w.regions.iter().map(|r| r.region).collect();
        let k = compile_kernel(&w, &w.kernels[0]).expect("compiles");
        (w, regions, k)
    }

    fn kernel_src(body: &str) -> String {
        format!(
            "workload \"t\";\nregion r[64, 4];\ndata d = [5, 0, 9];\n\
             host kind = 0 param = 3 tbs = 2 threads = 32 regs = 8 smem = 0;\n\
             kernel 0 \"k\" threads = 32 {{ {body} }}"
        )
    }

    /// VM and interpreter must agree — success or identical error.
    fn assert_backends_agree(body: &str, param: u64, tb: u32) {
        let src = kernel_src(body);
        let (w, regions, ck) = setup(&src);
        let vm = run_compiled(&regions, &w.datas, &ck, param, tb);
        let interp = interpret_tb(&w, &w.kernels[0], param, tb);
        assert_eq!(vm, interp, "backends diverge on: {body}");
    }

    #[test]
    fn agrees_on_the_full_statement_menu() {
        assert_backends_agree(
            "let a = tb * 32; let cnt = min(32, 64 - a);\n\
             if cnt == 0 { compute 1; return; }\n\
             load_slice r, a, cnt;\n\
             compute 4;\n\
             gather { for i in 0 .. cnt { if d[i % 3] > 0 { yield addr(r, a + i); } } }\n\
             compute_masked 6, cnt;\n\
             shared; sync;\n\
             launch 0, a, div_ceil(cnt, 2), 32, 20, 0;\n\
             store_slice r, a, cnt;\n\
             load_bcast r, a; store_bcast r, a + 1;",
            3,
            1,
        );
    }

    #[test]
    fn agrees_on_loops_and_logic() {
        assert_backends_agree(
            "let n = 0;\n\
             for i in 0 .. 10 { if i % 3 == 0 || i == 7 { n = n + i; } }\n\
             while n > 0 && n != 4 { n = n - 3; }\n\
             compute n + 1;",
            0,
            0,
        );
    }

    #[test]
    fn agrees_on_runtime_errors() {
        assert_backends_agree("compute d[tb + 7];", 0, 0); // oob
        assert_backends_agree("compute 1 / (param - 3);", 3, 0); // div0
        assert_backends_agree("compute div_ceil(4, tb);", 0, 0); // div_ceil 0
        assert_backends_agree("compute 5 % (tb * 2);", 0, 0); // mod0
    }

    #[test]
    fn agrees_on_short_circuit_masking_faults() {
        assert_backends_agree("compute 1 + (0 && 1 / 0); compute 1 + (1 || d[99]);", 0, 0);
        assert_backends_agree("compute 1 + (1 && 1 / 0);", 0, 0); // fault taken
    }

    #[test]
    fn agrees_on_assignment_to_loop_variable() {
        // Both back ends treat the loop variable as an ordinary slot
        // re-read at the loop head, so a body write redirects iteration.
        assert_backends_agree("for i in 0 .. 6 { compute i + 1; i = i + 1; }", 0, 0);
        assert_backends_agree("for i in 0 .. 6 { compute i + 1; i = 100; }", 0, 0);
    }

    #[test]
    fn agrees_on_fuel_exhaustion() {
        assert_backends_agree("while 1 { let x = 0; }", 0, 0);
    }

    #[test]
    fn agrees_on_saturating_and_wrapping_arithmetic() {
        assert_backends_agree(
            "compute 3 - 10; compute (1 << 63) * 2 + 5; compute 1 << 70; compute !tb;",
            0,
            0,
        );
    }

    #[test]
    fn undersized_tables_are_rejected_not_ub() {
        let (w, _regions, ck) = setup(&kernel_src("load_slice r, 0, 32;"));
        let err = run_compiled(&[], &w.datas, &ck, 0, 0).expect_err("must fail");
        assert_eq!(err.stage(), "bytecode");
        assert!(err.to_string().contains("smaller than verified"), "{err}");
    }
}
