//! Abstract syntax tree produced by the parser.
//!
//! The AST stores raw identifier names; [`crate::resolve()`] turns it into
//! the resolved form both execution back ends consume. Expression and
//! statement nodes carry the source line they start on so resolution
//! errors point back into the `.dsl` file.

/// Binary operators, in DSL surface syntax order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (saturating: the DSL's arithmetic mirrors the generators'
    /// `saturating_sub`-based tail math).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `/` (runtime error on zero divisor).
    Div,
    /// `%` (runtime error on zero divisor).
    Mod,
    /// `<<` (zero when the shift amount is 64 or more).
    Shl,
    /// `>>` (zero when the shift amount is 64 or more).
    Shr,
    /// `&` bitwise.
    BitAnd,
    /// `|` bitwise.
    BitOr,
    /// `==` (produces 0 or 1).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` short-circuit (produces 0 or 1).
    And,
    /// `||` short-circuit (produces 0 or 1).
    Or,
}

/// Two-argument builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `div_ceil(a, b)` (runtime error on zero divisor).
    DivCeil,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Variable, `param`, `tb`, or a named constant.
    Var(String),
    /// `name[index]`: element of a data array.
    Index(String, Box<Expr>),
    /// `len(name)`: length of a data array (resolved to a literal).
    Len(String),
    /// `addr(region, index)`: byte address of a region element.
    Addr(String, Box<Expr>),
    /// `min`/`max`/`div_ceil` call.
    Call(Builtin, Box<Expr>, Box<Expr>),
    /// `!expr` — logical not (0 becomes 1, nonzero becomes 0).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement, tagged with its starting source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let name = expr;` — declares a new variable.
    Let(String, Expr),
    /// `name = expr;` — assigns an existing variable.
    Assign(String, Expr),
    /// `if expr { … } [else { … }]`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for name in lo .. hi { … }` — `lo`/`hi` evaluated once.
    For(String, Expr, Expr, Vec<Stmt>),
    /// `while expr { … }`
    While(Expr, Vec<Stmt>),
    /// `return;` — ends the kernel program early.
    Return,
    /// `compute cycles;`
    Compute(Expr),
    /// `compute_masked cycles, active;`
    ComputeMasked(Expr, Expr),
    /// `sync;`
    Sync,
    /// `shared;`
    Shared,
    /// `load_slice region, start, count;` / `store_slice …` —
    /// `store` distinguishes the two.
    Slice {
        /// `true` for `store_slice`.
        store: bool,
        /// Region name.
        region: String,
        /// First element index.
        start: Expr,
        /// Element count (clamped to the region like the generators).
        count: Expr,
    },
    /// `load_bcast region, index;` / `store_bcast …`.
    Bcast {
        /// `true` for `store_bcast`.
        store: bool,
        /// Region name.
        region: String,
        /// Element index.
        index: Expr,
    },
    /// `gather { … }` / `scatter { … }` — the body runs `yield addr;`
    /// statements to collect per-thread addresses; an empty collection
    /// emits nothing (like `OpBuilder::gather`).
    Addrs {
        /// `true` for `scatter`.
        store: bool,
        /// Block collecting addresses via `yield`.
        body: Vec<Stmt>,
    },
    /// `yield expr;` — valid only inside a gather/scatter block.
    Yield(Expr),
    /// `launch kind, param, num_tbs, threads, regs, smem;`
    Launch {
        /// Kernel kind id.
        kind: Expr,
        /// Opaque parameter.
        param: Expr,
        /// Child grid size.
        num_tbs: Expr,
        /// Threads per child TB.
        threads: Expr,
        /// Registers per thread.
        regs: Expr,
        /// Shared memory bytes per TB.
        smem: Expr,
    },
}

/// A `host` declaration: one kernel the host launches, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostDecl {
    /// Source line.
    pub line: u32,
    /// Kernel kind (const expression).
    pub kind: Expr,
    /// Parameter.
    pub param: Expr,
    /// Grid size in TBs.
    pub tbs: Expr,
    /// Threads per TB.
    pub threads: Expr,
    /// Registers per thread.
    pub regs: Expr,
    /// Shared memory bytes per TB.
    pub smem: Expr,
}

/// A `kernel` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDecl {
    /// Source line.
    pub line: u32,
    /// Kernel kind (const expression; must be unique per workload).
    pub kind: Expr,
    /// Kernel name for traces ("bfs-sweep").
    pub name: String,
    /// Threads per TB (const expression).
    pub threads: Expr,
    /// Program body.
    pub body: Vec<Stmt>,
}

/// A parsed `.dsl` workload file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadAst {
    /// Application name ("bfs").
    pub name: String,
    /// Input name ("citation"; empty for single-input applications).
    pub input: String,
    /// `const name = expr;` declarations, in file order.
    pub consts: Vec<(u32, String, Expr)>,
    /// `region name[len, elem_bytes];` declarations, in file order —
    /// the order *is* the memory layout (bump allocation).
    pub regions: Vec<(u32, String, Expr, Expr)>,
    /// `data name = [ … ];` declarations, in file order.
    pub datas: Vec<(u32, String, Vec<u64>)>,
    /// Host launch list, in order.
    pub hosts: Vec<HostDecl>,
    /// Kernel definitions.
    pub kernels: Vec<KernelDecl>,
}
