//! Shared TB-op emission for both execution back ends.
//!
//! The reference interpreter and the bytecode VM compute values
//! differently, but every [`gpu_sim::program::TbOp`] they append goes
//! through this one context — including the u64→u32 narrowing of
//! compute cycles and launch fields, the slice-clamping logic (reused
//! from [`workloads::apps::common::OpBuilder`] verbatim), and the
//! gather/scatter address collection. Identical inputs therefore yield
//! bit-identical programs by construction; the differential tests only
//! have to establish that the *inputs* (evaluated operand values) agree.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, TbProgram};
use gpu_sim::types::Addr;
use workloads::apps::common::OpBuilder;
use workloads::layout::Region;

/// Narrows an operand to `u32` exactly the way every emission site does
/// (wrapping truncation; corpus programs never exceed `u32`).
fn narrow(v: u64) -> u32 {
    v as u32
}

/// Op-emission state for one TB program.
#[derive(Debug)]
pub(crate) struct EmitCtx {
    builder: OpBuilder,
    /// `Some((is_store, addrs))` while inside a gather/scatter block.
    gather: Option<(bool, Vec<Addr>)>,
}

impl EmitCtx {
    pub(crate) fn new(threads: u32) -> Self {
        EmitCtx { builder: OpBuilder::new(threads), gather: None }
    }

    pub(crate) fn compute(&mut self, cycles: u64) {
        self.builder.compute(narrow(cycles));
    }

    pub(crate) fn compute_masked(&mut self, cycles: u64, active: u64) {
        self.builder.compute_masked(narrow(cycles), narrow(active));
    }

    pub(crate) fn sync(&mut self) {
        self.builder.sync();
    }

    pub(crate) fn shared(&mut self) {
        self.builder.shared();
    }

    /// Slice access with `OpBuilder`'s clamp-and-skip semantics.
    pub(crate) fn slice(&mut self, store: bool, region: Region, start: u64, count: u64) {
        if store {
            self.builder.store_slice(region, start, count);
        } else {
            self.builder.load_slice(region, start, count);
        }
    }

    /// Broadcast access of one element. The address is computed directly
    /// (`base + index * elem`, wrapping) rather than through
    /// `Region::addr`, whose debug assertion would abort on the
    /// out-of-bounds indices randomized fuzz programs can produce; for
    /// in-bounds indices the two are identical.
    pub(crate) fn bcast(&mut self, store: bool, region: Region, index: u64) {
        use gpu_sim::program::{AddrPattern, MemOp, TbOp};
        let pattern = AddrPattern::Broadcast(element_addr(region, index));
        let op = if store { MemOp::store(pattern) } else { MemOp::load(pattern) };
        self.builder.push_raw(TbOp::Mem(op));
    }

    /// Opens a gather (`store == false`) or scatter (`store == true`)
    /// collection. The resolver guarantees blocks never nest.
    pub(crate) fn begin_addrs(&mut self, store: bool) {
        debug_assert!(self.gather.is_none(), "gather blocks cannot nest (resolver invariant)");
        self.gather = Some((store, Vec::new()));
    }

    /// Appends one address to the open collection.
    pub(crate) fn push_addr(&mut self, addr: u64) {
        if let Some((_, addrs)) = self.gather.as_mut() {
            addrs.push(addr);
        } else {
            debug_assert!(false, "push_addr outside gather (verifier invariant)");
        }
    }

    /// Closes the collection, emitting one gather/scatter op (or none
    /// when empty, like `OpBuilder::gather`).
    pub(crate) fn end_addrs(&mut self) {
        if let Some((store, addrs)) = self.gather.take() {
            if store {
                self.builder.scatter(addrs);
            } else {
                self.builder.gather(addrs);
            }
        }
    }

    pub(crate) fn launch(
        &mut self,
        kind: u64,
        param: u64,
        num_tbs: u64,
        threads: u64,
        regs: u64,
        smem: u64,
    ) {
        self.builder.launch(
            KernelKindId(kind as u16),
            param,
            narrow(num_tbs),
            ResourceReq::new(narrow(threads), narrow(regs), narrow(smem)),
        );
    }

    pub(crate) fn finish(mut self) -> TbProgram {
        // An unterminated gather (program returned mid-block) still
        // flushes, mirroring the interpreter's early-return path; the
        // resolver forbids `return` inside blocks so this only matters
        // for defense in depth.
        self.end_addrs();
        self.builder.build()
    }
}

/// `base + index * elem_bytes` with wrapping arithmetic — the total
/// version of `Region::addr`, shared by `bcast` and the `addr()`
/// builtin in both back ends.
pub(crate) fn element_addr(region: Region, index: u64) -> Addr {
    region.base().wrapping_add(index.wrapping_mul(u64::from(region.elem_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::program::{AddrPattern, MemSpace, TbOp};
    use workloads::layout::Layout;

    fn region(len: u64) -> Region {
        Layout::new().alloc(len, 4)
    }

    #[test]
    fn matches_opbuilder_for_the_full_op_menu() {
        let r = region(64);
        let mut ctx = EmitCtx::new(32);
        ctx.compute(4);
        ctx.slice(false, r, 0, 32);
        ctx.bcast(true, r, 5);
        ctx.begin_addrs(false);
        ctx.push_addr(r.base() + 4);
        ctx.end_addrs();
        ctx.shared();
        ctx.sync();
        ctx.launch(1, 7, 2, 32, 8, 0);
        let got = ctx.finish();

        let mut b = OpBuilder::new(32);
        b.compute(4)
            .load_slice(r, 0, 32)
            .store_bcast(r, 5)
            .gather(vec![r.base() + 4])
            .shared()
            .sync()
            .launch(KernelKindId(1), 7, 2, ResourceReq::new(32, 8, 0));
        assert_eq!(got, b.build());
    }

    #[test]
    fn empty_gather_emits_nothing() {
        let mut ctx = EmitCtx::new(32);
        ctx.begin_addrs(true);
        ctx.end_addrs();
        assert!(ctx.finish().is_empty());
    }

    #[test]
    fn bcast_is_broadcast_of_element_address() {
        let r = region(8);
        let mut ctx = EmitCtx::new(32);
        ctx.bcast(false, r, 3);
        let prog = ctx.finish();
        match prog.ops() {
            [TbOp::Mem(m)] => {
                assert_eq!(m.space, MemSpace::Global);
                assert_eq!(m.pattern, AddrPattern::Broadcast(r.addr(3)));
                assert!(!m.is_store);
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn out_of_bounds_bcast_is_total() {
        let r = region(8);
        let mut ctx = EmitCtx::new(32);
        ctx.bcast(false, r, 1_000_000); // Region::addr would debug-assert
        assert_eq!(ctx.finish().len(), 1);
    }
}
