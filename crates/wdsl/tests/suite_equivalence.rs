//! The tentpole equivalence gate: every suite workload's DSL port must
//! compile to TB programs *byte-identical* to the legacy generator's
//! output, for every host TB and every transitively launched child TB —
//! under both the bytecode VM and the reference interpreter.

use std::collections::BTreeMap;

use gpu_sim::program::ProgramSource;
use wdsl::{compile_workload, CompiledWorkload, ExecMode};
use workloads::{suite, Scale, Workload};

/// Walks the host kernels and all launches reachable from them (using
/// the generator as the launch oracle) and asserts byte-identity of
/// every program the compiled path produces.
fn assert_equivalent(w: &dyn Workload, compiled: &CompiledWorkload) {
    let name = w.full_name();
    let interp = compiled.clone().with_mode(ExecMode::Interp);
    // (kind, param) -> grid size; grids for the same key are identical
    // by construction (the launch spec is data-derived), but keep the
    // max to be safe.
    let mut frontier: BTreeMap<(u16, u64), u32> = BTreeMap::new();
    for hk in w.host_kernels() {
        let entry = frontier.entry((hk.kind.0, hk.param)).or_insert(0);
        *entry = (*entry).max(hk.num_tbs);
    }
    let mut done: BTreeMap<(u16, u64), u32> = BTreeMap::new();
    let mut programs = 0usize;
    while let Some((&(kind, param), &num_tbs)) = frontier.iter().next() {
        frontier.remove(&(kind, param));
        let seen = done.entry((kind, param)).or_insert(0);
        if *seen >= num_tbs {
            continue;
        }
        let from = *seen;
        *seen = num_tbs;
        for tb in from..num_tbs {
            let reference = w.tb_program(gpu_sim::program::KernelKindId(kind), param, tb);
            for (mode, cw) in [("vm", compiled), ("interp", &interp)] {
                let got = cw
                    .try_tb_program(gpu_sim::program::KernelKindId(kind), param, tb)
                    .unwrap_or_else(|e| {
                        panic!("{name}: {mode} failed on kind {kind} param {param} tb {tb}: {e}")
                    });
                assert_eq!(
                    got.canonical_bytes(),
                    reference.canonical_bytes(),
                    "{name}: {mode} diverges from generator on kind {kind} param {param} tb {tb}"
                );
            }
            programs += 1;
            for l in reference.launches() {
                let entry = frontier.entry((l.kind.0, l.param)).or_insert(0);
                *entry = (*entry).max(l.num_tbs);
            }
        }
    }
    assert!(programs > 1, "{name}: walk covered only {programs} programs");
}

#[test]
fn every_suite_workload_matches_its_generator() {
    for w in suite(Scale::Tiny) {
        let compiled = compile_workload(w.as_ref(), ExecMode::Vm)
            .unwrap_or_else(|e| panic!("{}: DSL pipeline failed: {e}", w.full_name()))
            .unwrap_or_else(|| panic!("{}: workload has no DSL port", w.full_name()));
        assert_equivalent(w.as_ref(), &compiled);
    }
}

#[test]
fn seeded_suite_instances_also_match() {
    // A different input seed regenerates every data-dependent part of
    // the DSL text (graphs, match lists, partition tables).
    for w in workloads::suite_seeded(Scale::Tiny, 7) {
        let compiled = compile_workload(w.as_ref(), ExecMode::Vm)
            .unwrap_or_else(|e| panic!("{}: DSL pipeline failed: {e}", w.full_name()))
            .unwrap_or_else(|| panic!("{}: workload has no DSL port", w.full_name()));
        assert_equivalent(w.as_ref(), &compiled);
    }
}

#[test]
fn checked_in_corpus_matches_freshly_emitted_text() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../workloads/dsl");
    let mut seen = 0usize;
    for w in suite(Scale::Tiny) {
        let name = w.full_name();
        let path = dir.join(format!("{name}.dsl"));
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} — regenerate with `cargo run -p wdsl --bin dsl-corpus -- write \
                 crates/workloads/dsl`",
                path.display()
            )
        });
        let fresh = w.dsl_text().unwrap_or_else(|| panic!("{name}: no DSL port"));
        assert_eq!(
            on_disk, fresh,
            "{name}: checked-in corpus file is stale — regenerate with \
             `cargo run -p wdsl --bin dsl-corpus -- write crates/workloads/dsl`"
        );
        seen += 1;
    }
    assert_eq!(seen, 16);
}

#[test]
fn compiled_names_match_generator_names() {
    for w in suite(Scale::Tiny) {
        let compiled =
            compile_workload(w.as_ref(), ExecMode::Vm).expect("pipeline").expect("port exists");
        assert_eq!(compiled.full_name(), w.full_name());
        for hk in w.host_kernels() {
            assert_eq!(compiled.kind_name(hk.kind), w.kind_name(hk.kind));
        }
    }
}
