//! Differential-testing gate: randomized DSL programs executed by the
//! bytecode VM and the reference interpreter must agree on every
//! program (values and structured errors alike).
//!
//! The CI `dsl-differential` job runs this with `DSL_FUZZ_CASES=384`.
//! On divergence the complete failing program text is written under
//! `DSL_FUZZ_ARTIFACT_DIR` (default `target/dsl-fuzz/`) so CI can
//! upload it as an artifact for offline reproduction.

use wdsl::difftest::fuzz_case;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

#[test]
fn vm_and_interpreter_agree_on_randomized_programs() {
    let cases = env_u64("DSL_FUZZ_CASES", 256);
    let base = env_u64("DSL_FUZZ_SEED", 0);
    let mut programs = 0usize;
    for seed in base..base + cases {
        match fuzz_case(seed) {
            Ok(count) => programs += count,
            Err(report) => {
                let dir = std::env::var("DSL_FUZZ_ARTIFACT_DIR")
                    .unwrap_or_else(|_| "target/dsl-fuzz".into());
                let path = std::path::Path::new(&dir).join(format!("failing-seed-{seed}.txt"));
                let write_err = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, &report))
                    .err()
                    .map(|e| format!(" (artifact write failed: {e})"))
                    .unwrap_or_default();
                panic!(
                    "fuzz seed {seed} diverged; report at {}{write_err}\n{report}",
                    path.display()
                );
            }
        }
    }
    // Every seed explores at least the host-kernel programs of its
    // generated workload, so the walk must have compared plenty.
    assert!(programs >= cases as usize, "only {programs} programs compared over {cases} seeds");
}
