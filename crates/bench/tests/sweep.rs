//! Integration tests for the parallel sweep executor and the
//! `repro.json` document: job-count invariance, failure isolation, and
//! shape-assertion round-trips through serialization.
//!
//! These run at tiny scale so they stay in the tier-1 (`cargo test`)
//! budget; the ci-scale golden snapshot lives in the workspace-level
//! `tests/repro_snapshot.rs` and runs `--ignored` in CI.

use std::sync::OnceLock;

use laperm_bench::{evaluate_shapes, run_cells, SweepDoc, SweepFailure};
use workloads::Scale;

/// One tiny-scale sweep built on 8 workers, shared across the tests
/// here (a full build costs seconds even at tiny scale).
fn parallel_doc() -> &'static SweepDoc {
    static DOC: OnceLock<SweepDoc> = OnceLock::new();
    DOC.get_or_init(|| SweepDoc::build(Scale::Tiny, 0, 8))
}

/// The tentpole invariant: the sweep document is bit-identical no
/// matter how many workers produced it. `repro all --jobs 1` and
/// `--jobs 8` must write the same `repro.json` byte-for-byte.
#[test]
fn sweep_doc_is_bit_identical_across_job_counts() {
    let serial = SweepDoc::build(Scale::Tiny, 0, 1).to_json();
    assert_eq!(
        serial,
        parallel_doc().to_json(),
        "repro.json differs between --jobs 1 and --jobs 8"
    );
}

/// Backpressure determinism across workers: with finite launch-path
/// capacities under either overflow policy, the sweep records are
/// bit-identical for any `--jobs` count. Stalls and spills are decided
/// by simulated cycles, never by wall-clock interleaving.
#[test]
fn finite_limit_sweeps_are_bit_identical_across_job_counts() {
    use gpu_sim::config::{GpuConfig, LaunchLimits, OverflowPolicy};
    use laperm_bench::sweep::{matrix_cells, run_matrix_cells};

    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..8.min(cells.len())];
    for policy in [OverflowPolicy::StallParent, OverflowPolicy::SpillVirtual { extra_latency: 200 }]
    {
        let mut cfg = GpuConfig::kepler_k20c();
        cfg.launch_limits = LaunchLimits {
            kmu_capacity: Some(2),
            pending_launch_capacity: Some(2),
            smx_queue_capacity: Some(64),
            policy,
        };
        let serial = run_matrix_cells(subset, 1, &cfg);
        let parallel = run_matrix_cells(subset, 8, &cfg);
        assert!(serial.failures.is_empty(), "{}: {:?}", policy.name(), serial.failures);
        assert_eq!(
            serial.records,
            parallel.records,
            "{}: finite-limit sweep differs between --jobs 1 and --jobs 8",
            policy.name()
        );
    }
}

/// A panic in one run surfaces as that cell's error; every other cell
/// still completes and results stay in input order.
#[test]
fn one_panicking_run_does_not_poison_the_sweep() {
    let cells: Vec<u32> = (0..16).collect();
    let results = run_cells(&cells, 8, |&i| {
        assert!(i != 11, "simulated run {i} exploded");
        i * 10
    });
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 11 {
            let err = r.as_ref().unwrap_err();
            assert!(err.contains("simulated run 11 exploded"), "unexpected message: {err}");
        } else {
            assert_eq!(*r.as_ref().unwrap(), i as u32 * 10);
        }
    }
}

/// The document survives a serialize/parse round-trip byte-for-byte,
/// and the shape assertions judge the parsed copy exactly like the
/// original — `repro check` sees what `repro all` saw.
#[test]
fn shape_assertions_round_trip_through_json() {
    let doc = parallel_doc();
    let text = doc.to_json();
    let parsed = SweepDoc::from_json(&text).expect("parse own output");
    assert_eq!(parsed.to_json(), text, "re-serialization drifted");

    let before = evaluate_shapes(doc);
    let after = evaluate_shapes(&parsed);
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.id, a.id);
        assert_eq!(b.passed, a.passed, "assertion {} flipped across round-trip", b.id);
        assert_eq!(b.detail, a.detail, "assertion {} detail drifted", b.id);
    }
}

/// Failures are serialized per configuration, and their presence flips
/// the matrix-completeness assertion from PASS to FAIL.
#[test]
fn failures_are_attributed_and_fail_the_gate() {
    let mut doc = parallel_doc().clone();
    let complete = |d: &SweepDoc| {
        evaluate_shapes(d)
            .into_iter()
            .find(|o| o.id == "matrix-complete")
            .expect("matrix-complete assertion exists")
    };
    assert!(complete(&doc).passed, "healthy tiny sweep should be complete");

    doc.records.pop();
    doc.failures.push(SweepFailure {
        cell_index: 127,
        workload: "sssp-cage15".into(),
        launch_model: "dtbl".into(),
        scheduler: "adaptive-bind".into(),
        attempts: 3,
        error: "simulated: queue wedged".into(),
    });
    let outcome = complete(&doc);
    assert!(!outcome.passed, "missing record + failure must fail matrix-complete");

    let parsed = SweepDoc::from_json(&doc.to_json()).expect("parse doctored doc");
    assert_eq!(parsed.failures, doc.failures, "failure attribution lost in round-trip");
    assert!(!complete(&parsed).passed);
}

/// Compile-time audit of the threading seam: everything the executor
/// moves across or shares between worker threads must stay Send/Sync.
/// Removing `Send + Sync` from `ProgramSource` (or storing an `Rc`/raw
/// pointer in any of these) turns into a build error here instead of an
/// error deep inside `std::thread::scope`.
#[test]
fn sweep_types_stay_thread_safe() {
    fn sendable<T: Send>() {}
    fn shareable<T: Sync>() {}
    sendable::<std::sync::Arc<dyn workloads::Workload>>();
    shareable::<std::sync::Arc<dyn workloads::Workload>>();
    shareable::<laperm_bench::sweep::MatrixCell>();
    shareable::<gpu_sim::config::GpuConfig>();
    sendable::<sim_metrics::harness::RunRecord>();
    sendable::<SweepDoc>();
}

/// Degraded documents dominate the check verdict (missing cells make
/// per-assertion FAILs indistinguishable from vacuity), and the
/// degraded rendering leads with the banner and the survivors note.
/// Healthy documents render byte-identically to the plain shape report
/// — the CI goldens depend on that.
#[test]
fn check_verdicts_and_degraded_rendering() {
    use laperm_bench::{check_document, render_check_report, render_shape_report, CheckVerdict};

    let healthy = parallel_doc();
    let (outcomes, verdict) = check_document(healthy);
    assert_ne!(verdict, CheckVerdict::Degraded, "healthy doc misclassified");
    assert_eq!(
        render_check_report(healthy, &outcomes),
        render_shape_report(&outcomes),
        "healthy rendering must not gain a preamble"
    );

    let mut degraded = healthy.clone();
    degraded.records.pop();
    degraded.failures.push(SweepFailure {
        cell_index: 127,
        workload: "sssp-cage15".into(),
        launch_model: "dtbl".into(),
        scheduler: "adaptive-bind".into(),
        attempts: 2,
        error: "injected: cell wedged".into(),
    });
    let (outcomes, verdict) = check_document(&degraded);
    assert_eq!(verdict, CheckVerdict::Degraded);
    let report = render_check_report(&degraded, &outcomes);
    assert!(report.starts_with("DEGRADED (1/128 cells failed)"), "banner missing: {report}");
    assert!(report.contains("sssp-cage15"), "failures table missing the failed cell");
    assert!(report.contains("vacuous"), "survivors note missing");
}

/// Corrupt or incompatible documents are rejected with a message, not a
/// panic — `repro check` exits 3 on them (I/O-corruption, distinct from
/// assertion violations and degraded input).
#[test]
fn malformed_documents_are_rejected() {
    assert!(SweepDoc::from_json("not json").is_err());
    assert!(SweepDoc::from_json("{}").is_err());
    let future = "{\"schema_version\": 999, \"scale\": \"ci\", \"seed\": 0, \
                  \"runs\": [], \"failures\": [], \"footprints\": []}";
    let err = SweepDoc::from_json(future).unwrap_err();
    assert!(err.contains("schema version 999"), "unhelpful error: {err}");
}
