//! Criterion benches: one group per paper table/figure.
//!
//! Each group times the code path that regenerates the corresponding
//! artifact (at `tiny` scale so a bench run stays in seconds; the `repro`
//! binary runs the full `paper` scale). `cargo bench -p laperm-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use laperm_bench::{figure4, table1, table2};
use sim_metrics::footprint::FootprintAnalysis;
use sim_metrics::harness::{run_once, SchedulerKind};
use workloads::apps::amr::Amr;
use workloads::apps::bfs::Bfs;
use workloads::graph::GraphKind;
use workloads::{Scale, Workload};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/config", |b| b.iter(table1));
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/inventory", |b| b.iter(|| table2(Scale::Tiny)));
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    let bfs = Bfs::new(GraphKind::Citation, Scale::Tiny);
    g.bench_function("footprint/bfs-citation", |b| {
        b.iter(|| FootprintAnalysis::analyze(&bfs))
    });
    let amr = Amr::new(Scale::Tiny);
    g.bench_function("footprint/amr", |b| b.iter(|| FootprintAnalysis::analyze(&amr)));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("toy-placements", |b| b.iter(figure4));
    g.finish();
}

fn matrix_cell(c: &mut Criterion, figure: &str, model: LaunchModelKind) {
    let mut g = c.benchmark_group(figure);
    g.sample_size(10);
    let w: Arc<dyn Workload> = Arc::new(Bfs::new(GraphKind::Citation, Scale::Tiny));
    let cfg = GpuConfig::kepler_k20c();
    for sched in SchedulerKind::all() {
        g.bench_function(format!("bfs-citation/{model}/{sched}"), |b| {
            b.iter(|| run_once(&w, model, sched, &cfg).expect("run"))
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    // Figure 7 (L2 hit rates) is one projection of the run matrix; the
    // bench times the underlying CDP simulations.
    matrix_cell(c, "fig7", LaunchModelKind::Cdp);
}

fn bench_fig8(c: &mut Criterion) {
    // Figure 8 (L1 hit rates): DTBL simulations.
    matrix_cell(c, "fig8", LaunchModelKind::Dtbl);
}

fn bench_fig9(c: &mut Criterion) {
    // Figure 9 (normalized IPC): time the full four-scheduler sweep.
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let w: Arc<dyn Workload> = Arc::new(Bfs::new(GraphKind::Cage15, Scale::Tiny));
    let cfg = GpuConfig::kepler_k20c();
    g.bench_function("bfs-cage15/dtbl/all-schedulers", |b| {
        b.iter(|| {
            SchedulerKind::all()
                .iter()
                .map(|&s| {
                    run_once(&w, LaunchModelKind::Dtbl, s, &cfg).expect("run").ipc
                })
                .collect::<Vec<f64>>()
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_table2,
    bench_fig2,
    bench_fig4,
    bench_fig7,
    bench_fig8,
    bench_fig9
);
criterion_main!(figures);
