//! Criterion benches of the simulator substrate itself: cache probes,
//! coalescing, DRAM queueing, program generation, and whole-sim
//! throughput. These guard the reproduction's own performance (a slow
//! simulator caps the experiment scale).

use criterion::{criterion_group, criterion_main, Criterion};

use gpu_sim::cache::{AccessClass, Cache};
use gpu_sim::coalesce::coalesce;
use gpu_sim::config::GpuConfig;
use gpu_sim::dram::Dram;
use gpu_sim::program::ProgramSource;
use gpu_sim::types::BatchId;
use laperm::PriorityQueues;
use workloads::apps::bfs::Bfs;
use workloads::apps::common::{CHILD, PARENT};
use workloads::graph::GraphKind;
use workloads::{Scale, Workload};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/cache");
    g.bench_function("l1-probe-hot", |b| {
        let mut cache = Cache::new(32 * 1024, 4, 128);
        for line in 0..64 {
            cache.access(line, true, AccessClass::Parent);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            cache.access(i, true, AccessClass::Parent)
        })
    });
    g.bench_function("l2-probe-streaming", |b| {
        let mut cache = Cache::new(1536 * 1024, 16, 128);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            cache.access(line, true, AccessClass::Child)
        })
    });
    g.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/coalesce");
    let coalesced: Vec<u64> = (0..32u64).map(|t| 4096 + t * 4).collect();
    let scattered: Vec<u64> = (0..32u64).map(|t| t * 128 * 17).collect();
    g.bench_function("fully-coalesced", |b| b.iter(|| coalesce(&coalesced, 7)));
    g.bench_function("fully-scattered", |b| b.iter(|| coalesce(&scattered, 7)));
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("substrate/dram-access", |b| {
        let cfg = GpuConfig::kepler_k20c();
        let mut dram = Dram::new(cfg.dram_channels, cfg.dram_latency, cfg.dram_service_cycles);
        let mut line = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            line += 1;
            now += 2;
            dram.access(line, now)
        })
    });
}

fn bench_program_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/programs");
    let bfs = Bfs::new(GraphKind::Citation, Scale::Tiny);
    g.bench_function("bfs-parent-tb", |b| {
        let mut tb = 0u32;
        let total = bfs.host_kernels()[0].num_tbs;
        b.iter(|| {
            tb = (tb + 1) % total;
            bfs.tb_program(PARENT, 0, tb)
        })
    });
    let heavy = (0..bfs.app().graph().num_vertices())
        .find(|&v| bfs.app().graph().degree(v) >= bfs.app().heavy_threshold())
        .expect("heavy vertex exists");
    g.bench_function("bfs-child-tb", |b| {
        b.iter(|| bfs.tb_program(CHILD, u64::from(heavy), 0))
    });
    g.finish();
}

fn bench_priority_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/laperm-queues");
    g.bench_function("push", |b| {
        let mut q = PriorityQueues::new(13, 4, 128);
        let mut i = 0u32;
        b.iter(|| {
            q.push((i % 13) as usize, (i % 4) as u8 + 1, BatchId(i));
            i += 1;
        })
    });
    g.bench_function("highest-with-pruning", |b| {
        let mut q = PriorityQueues::new(13, 4, 128);
        for i in 0..128u32 {
            q.push((i % 13) as usize, (i % 4) as u8 + 1, BatchId(i));
        }
        let mut tick = 0u32;
        b.iter(|| {
            tick = tick.wrapping_add(1);
            // Half the entries look exhausted, exercising the prune path.
            q.highest((tick % 13) as usize, |b| b.0 % 2 == tick % 2)
        })
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_cache,
    bench_coalesce,
    bench_dram,
    bench_program_generation,
    bench_priority_queues
);
criterion_main!(simulator);
