//! Wall-clock throughput benchmark of the simulator's hot loop.
//!
//! Measures simulated cycles per wall-clock second on fixed
//! configurations:
//!
//! * `figure4-toy` — the paper's Figure 4 walk-through machine, looped
//!   many times (dominated by per-cycle fixed costs);
//! * `bfs-citation/kepler_k20c` — one real workload at `Scale::Small` on
//!   the Table I machine (dominated by the dispatch/execute path);
//! * `bfs-citation/kepler_k20c/dsl-vm` — the same workload served
//!   through its compiled DSL port (the `wdsl` bytecode VM); the delta
//!   against the plain case is the VM's program-generation overhead in
//!   the hot path;
//! * `launch-storm/kepler_k20c` — a CDP relay that bursts launches
//!   through a finite two-slot pending-launch buffer on the Table I
//!   machine, dominated by launch-path queueing (spill-queue release
//!   edges). Measured under both engines (the `/cycle-stepped` twin),
//!   so the document shows the event engine's gain on launch-dominated
//!   workloads directly.
//!
//! The `hotloop` binary runs all cases and emits `BENCH_hotloop.json`
//! (with the producing machine's `host_cpus`, so cross-host wall-clock
//! comparisons are recognizable) and the performance trajectory is
//! tracked across PRs (see the "Performance" section of
//! `docs/ARCHITECTURE.md`).

use std::sync::Arc;
use std::time::Instant;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::{EngineMode, GpuConfig, LaunchLimits, OverflowPolicy};
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
use sim_metrics::harness::SchedulerKind;
use wdsl::{compile_workload, ExecMode};
use workloads::{suite, Scale, SharedSource, Workload};

use crate::fig4::Figure4Source;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct HotloopResult {
    /// Case name (stable across PRs; used for baseline comparison).
    pub name: String,
    /// Scheduler under test.
    pub scheduler: String,
    /// Launch model under test.
    pub launch_model: String,
    /// Simulation engine under test (`event` or `cycle-stepped`).
    pub engine: String,
    /// Whether idle-cycle fast-forward was enabled.
    pub fast_forward: bool,
    /// Simulation repetitions measured.
    pub iters: u32,
    /// Total simulated cycles across all repetitions.
    pub cycles: u64,
    /// Total wall-clock seconds across all repetitions.
    pub wall_secs: f64,
    /// Simulated cycles per wall-clock second (the tracked metric).
    pub cycles_per_sec: f64,
}

impl HotloopResult {
    #[allow(clippy::too_many_arguments)]
    fn from_run(
        name: &str,
        scheduler: &str,
        launch_model: &str,
        engine: EngineMode,
        fast_forward: bool,
        iters: u32,
        cycles: u64,
        wall_secs: f64,
    ) -> Self {
        HotloopResult {
            name: name.to_string(),
            scheduler: scheduler.to_string(),
            launch_model: launch_model.to_string(),
            engine: engine.name().to_string(),
            fast_forward,
            iters,
            cycles,
            wall_secs,
            cycles_per_sec: if wall_secs > 0.0 { cycles as f64 / wall_secs } else { 0.0 },
        }
    }

    /// Renders the result as a JSON object (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"scheduler\": \"{}\", \"launch_model\": \"{}\", \
             \"engine\": \"{}\", \"fast_forward\": {}, \"iters\": {}, \"cycles\": {}, \
             \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.1}}}",
            self.name,
            self.scheduler,
            self.launch_model,
            self.engine,
            self.fast_forward,
            self.iters,
            self.cycles,
            self.wall_secs,
            self.cycles_per_sec,
        )
    }
}

/// Runs the Figure-4 toy machine `iters` times and measures throughput.
pub fn bench_figure4_toy(iters: u32) -> HotloopResult {
    let cfg = GpuConfig::figure4_toy();
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut sim = Simulator::new(cfg.clone(), Box::new(Figure4Source))
            .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
        sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0))
            .expect("toy kernel launches");
        let stats = sim.run_to_completion().expect("toy run completes");
        cycles += stats.cycles;
    }
    let wall = start.elapsed().as_secs_f64();
    HotloopResult::from_run(
        "figure4-toy",
        "rr",
        "dtbl",
        cfg.engine_mode,
        cfg.fast_forward,
        iters,
        cycles,
        wall,
    )
}

/// Runs `bfs-citation` at [`Scale::Small`] on the Table I Kepler machine
/// and measures throughput. This is the reference workload for the
/// acceptance threshold tracked across PRs.
pub fn bench_kepler_reference(iters: u32) -> HotloopResult {
    let cfg = GpuConfig::kepler_k20c();
    let workload: Arc<dyn Workload> = suite(Scale::Small)
        .into_iter()
        .find(|w| w.full_name() == "bfs-citation")
        .expect("bfs-citation in suite");
    let sched = SchedulerKind::AdaptiveBind;
    let model = LaunchModelKind::Dtbl;
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
            .with_scheduler(sched.build(&cfg))
            .with_launch_model(model.build(LaunchLatency::default_for(model)));
        for hk in workload.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req)
                .expect("host kernel launches");
        }
        let stats = sim.run_to_completion().expect("reference run completes");
        cycles += stats.cycles;
    }
    let wall = start.elapsed().as_secs_f64();
    HotloopResult::from_run(
        "bfs-citation/kepler_k20c",
        sched.name(),
        model.name(),
        cfg.engine_mode,
        cfg.fast_forward,
        iters,
        cycles,
        wall,
    )
}

/// [`bench_kepler_reference`] with the workload served through its DSL
/// port: compiled once up front, then every `tb_program` request during
/// simulation runs the bytecode VM instead of the Rust generator. The
/// simulated machine is identical (programs are byte-identical across
/// paths), so the throughput delta against the plain reference case *is*
/// the VM's program-generation overhead in the simulator's hot path —
/// tracked across PRs like every other case.
pub fn bench_kepler_reference_dsl(iters: u32) -> HotloopResult {
    let cfg = GpuConfig::kepler_k20c();
    let generator = suite(Scale::Small)
        .into_iter()
        .find(|w| w.full_name() == "bfs-citation")
        .expect("bfs-citation in suite");
    let compiled = compile_workload(generator.as_ref(), ExecMode::Vm)
        .expect("bfs-citation DSL port compiles")
        .expect("bfs-citation has a DSL port");
    let workload: Arc<dyn Workload> = Arc::new(compiled);
    let sched = SchedulerKind::AdaptiveBind;
    let model = LaunchModelKind::Dtbl;
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
            .with_scheduler(sched.build(&cfg))
            .with_launch_model(model.build(LaunchLatency::default_for(model)));
        for hk in workload.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req)
                .expect("host kernel launches");
        }
        let stats = sim.run_to_completion().expect("reference run completes");
        cycles += stats.cycles;
    }
    let wall = start.elapsed().as_secs_f64();
    HotloopResult::from_run(
        "bfs-citation/kepler_k20c/dsl-vm",
        sched.name(),
        model.name(),
        cfg.engine_mode,
        cfg.fast_forward,
        iters,
        cycles,
        wall,
    )
}

/// A CDP launch storm driven through a finite pending-launch buffer:
/// generation `param` of kernel kind 0 is a single-TB kernel that
/// computes briefly, then device-launches one chain continuation plus
/// `leaves` short-lived leaf kernels (leaf flag in the parameter's high
/// bit), until `depth` generations have run. The burst overflows the
/// configured pending-launch buffer, so most launches sit in the
/// memory-backed spill queue for `extra_latency` cycles before entering
/// the buffer — simulated time is dominated by launch-path queueing,
/// the launch-dominated shape the event engine is built for.
pub(crate) struct LaunchStormSource {
    pub(crate) depth: u64,
    pub(crate) leaves: u32,
}

const STORM_LEAF_BIT: u64 = 1 << 32;

impl ProgramSource for LaunchStormSource {
    fn tb_program(&self, kind: KernelKindId, param: u64, _tb: u32) -> TbProgram {
        let gen = param & (STORM_LEAF_BIT - 1);
        let leaf = param & STORM_LEAF_BIT != 0;
        let mut ops = vec![TbOp::Compute(8)];
        if !leaf && gen + 1 < self.depth {
            // Continuation first, so the relay claims a buffer slot
            // before the leaves saturate it.
            ops.push(TbOp::Launch(LaunchSpec {
                kind,
                param: gen + 1,
                num_tbs: 1,
                req: ResourceReq::new(32, 8, 0),
            }));
            for _ in 0..self.leaves {
                ops.push(TbOp::Launch(LaunchSpec {
                    kind,
                    param: (gen + 1) | STORM_LEAF_BIT,
                    num_tbs: 1,
                    req: ResourceReq::new(32, 8, 0),
                }));
            }
        }
        TbProgram::new(ops)
    }
}

/// The finite launch path the storm saturates: a two-slot pending-launch
/// buffer spilling to a memory-backed queue, as CDP's software queue
/// does when the hardware buffer fills.
fn storm_limits() -> LaunchLimits {
    LaunchLimits {
        pending_launch_capacity: Some(2),
        policy: OverflowPolicy::SpillVirtual { extra_latency: 2500 },
        ..LaunchLimits::unbounded()
    }
}

/// Runs the launch storm on the Table I Kepler machine under the given
/// engine. The spill queue is occupied for most of the run, which the
/// cycle-stepped engine's fast-forward refuses to skip over (any
/// upcoming cycle could release an entry), while the event engine wakes
/// exactly at the queue's release edges. The event-mode row is the
/// tracked metric; the cycle-stepped twin is the reference that makes
/// the launch-dominated speedup visible inside `BENCH_hotloop.json`
/// itself.
pub fn bench_launch_storm(iters: u32, engine: EngineMode) -> HotloopResult {
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.engine_mode = engine;
    cfg.launch_limits = storm_limits();
    let model = LaunchModelKind::Cdp;
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let source = LaunchStormSource { depth: 200, leaves: 3 };
        let mut sim = Simulator::new(cfg.clone(), Box::new(source))
            .with_launch_model(model.build(LaunchLatency::default_for(model)));
        sim.launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(32, 8, 0))
            .expect("storm root launches");
        let stats = sim.run_to_completion().expect("storm run completes");
        cycles += stats.cycles;
    }
    let wall = start.elapsed().as_secs_f64();
    let name = match engine {
        EngineMode::Event => "launch-storm/kepler_k20c",
        EngineMode::CycleStepped => "launch-storm/kepler_k20c/cycle-stepped",
    };
    HotloopResult::from_run(name, "rr", model.name(), engine, cfg.fast_forward, iters, cycles, wall)
}

/// Runs the full hotloop suite.
pub fn run_hotloop() -> Vec<HotloopResult> {
    vec![
        bench_figure4_toy(5000),
        bench_kepler_reference(15),
        bench_kepler_reference_dsl(15),
        bench_launch_storm(10, EngineMode::Event),
        bench_launch_storm(10, EngineMode::CycleStepped),
    ]
}

/// Renders results (plus optional per-case baseline throughput from a
/// previous run) as the `BENCH_hotloop.json` document. `host_cpus` is
/// recorded so a reader (and the CI gate) can tell when two documents
/// were produced on different machines — wall-clock throughput is only
/// comparable within one host class.
pub fn render_json(
    results: &[HotloopResult],
    baseline: &[(String, f64)],
    host_cpus: usize,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"hotloop\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    ");
        let mut obj = r.to_json();
        if let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) {
            let speedup = if *base > 0.0 { r.cycles_per_sec / base } else { 0.0 };
            obj.truncate(obj.len() - 1);
            obj.push_str(&format!(
                ", \"baseline_cycles_per_sec\": {base:.1}, \"speedup\": {speedup:.2}}}"
            ));
        }
        out.push_str(&obj);
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, cycles_per_sec)` pairs from a previously written
/// `BENCH_hotloop.json` (minimal parser for our own fixed format).
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else { continue };
        let Some(cps) = field_num(line, "cycles_per_sec") else { continue };
        out.push((name, cps));
    }
    out
}

/// Extracts the producing machine's `host_cpus` from a previously
/// written `BENCH_hotloop.json`. `None` for documents from before the
/// field existed.
pub fn parse_host_cpus(json: &str) -> Option<usize> {
    json.lines().find_map(|l| field_num(l, "host_cpus").map(|n| n as usize))
}

/// Compares measured throughput against a baseline with a tolerance.
///
/// A case regresses when its throughput drops more than
/// `max_regression_pct` percent below the baseline's. Cases without a
/// baseline entry (new benchmarks) are noted but never fail. When
/// `hosts` is `Some((baseline_cpus, current_cpus))` and the two differ,
/// the documents were produced on different machine classes and their
/// wall-clock numbers are not comparable: misses are annotated `MISS`
/// in the report but do not fail the check (a 1-CPU runner replaying an
/// 8-core baseline would otherwise be misread as a regression). Returns
/// `(all cases within tolerance, human-readable report)`; the report
/// names every failing case with both numbers so a CI failure is
/// actionable without re-running locally.
pub fn check_regressions(
    results: &[HotloopResult],
    baseline: &[(String, f64)],
    max_regression_pct: f64,
    hosts: Option<(usize, usize)>,
) -> (bool, String) {
    let mut ok = true;
    let mut report = String::new();
    let cross_host = matches!(hosts, Some((base, cur)) if base != cur);
    if cross_host {
        if let Some((base, cur)) = hosts {
            report.push_str(&format!(
                "  NOTE baseline was produced on a {base}-cpu host, this run on a \
                 {cur}-cpu host; misses are annotated, not failed\n"
            ));
        }
    }
    for r in results {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            report.push_str(&format!(
                "  NEW  {}: {:.0} cycles/sec (no baseline)\n",
                r.name, r.cycles_per_sec
            ));
            continue;
        };
        let floor = base * (1.0 - max_regression_pct / 100.0);
        if r.cycles_per_sec < floor {
            let tag = if cross_host { "MISS" } else { "FAIL" };
            if !cross_host {
                ok = false;
            }
            report.push_str(&format!(
                "  {tag} {}: {:.0} cycles/sec is {:.1}% below baseline {:.0} \
                 (tolerance {max_regression_pct:.0}%)\n",
                r.name,
                r.cycles_per_sec,
                (1.0 - r.cycles_per_sec / base) * 100.0,
                base
            ));
        } else {
            report.push_str(&format!(
                "  OK   {}: {:.0} cycles/sec vs baseline {:.0} ({:+.1}%)\n",
                r.name,
                r.cycles_per_sec,
                base,
                (r.cycles_per_sec / base - 1.0) * 100.0
            ));
        }
    }
    (ok, report)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_toy_measures_throughput() {
        let r = bench_figure4_toy(2);
        assert_eq!(r.iters, 2);
        assert!(r.cycles > 0);
        assert!(r.cycles_per_sec > 0.0);
    }

    #[test]
    fn json_roundtrip_recovers_throughput() {
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 3, 1000, 0.5);
        let json = render_json(std::slice::from_ref(&r), &[], 4);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "case-a");
        assert!((parsed[0].1 - 2000.0).abs() < 0.5);
        assert_eq!(parse_host_cpus(&json), Some(4));
        assert!(json.contains("\"engine\": \"event\""), "{json}");
    }

    #[test]
    fn host_cpus_absent_from_old_documents() {
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 3, 1000, 0.5);
        let json = render_json(std::slice::from_ref(&r), &[], 4);
        let stripped: String =
            json.lines().filter(|l| !l.contains("host_cpus")).collect::<Vec<_>>().join("\n");
        assert_eq!(parse_host_cpus(&stripped), None);
    }

    #[test]
    fn render_includes_speedup_against_baseline() {
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 1, 3000, 1.0);
        let json = render_json(&[r], &[("case-a".to_string(), 1000.0)], 1);
        assert!(json.contains("\"speedup\": 3.00"), "{json}");
        assert!(json.contains("\"baseline_cycles_per_sec\": 1000.0"), "{json}");
    }

    #[test]
    fn regression_within_tolerance_passes() {
        // 800 vs 1000 baseline = -20%, inside a 30% tolerance.
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 1, 800, 1.0);
        let (ok, report) = check_regressions(&[r], &[("case-a".to_string(), 1000.0)], 30.0, None);
        assert!(ok, "{report}");
        assert!(report.contains("OK   case-a"), "{report}");
    }

    #[test]
    fn regression_beyond_tolerance_fails_with_both_numbers() {
        // 600 vs 1000 baseline = -40%, outside a 30% tolerance.
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 1, 600, 1.0);
        let (ok, report) =
            check_regressions(&[r], &[("case-a".to_string(), 1000.0)], 30.0, Some((2, 2)));
        assert!(!ok);
        assert!(report.contains("FAIL case-a"), "{report}");
        assert!(report.contains("600"), "{report}");
        assert!(report.contains("1000"), "{report}");
    }

    #[test]
    fn cross_host_miss_is_annotated_not_failed() {
        // Same -40% miss, but the baseline came from an 8-cpu host and
        // this run from a 1-cpu host: annotate, don't fail.
        let r =
            HotloopResult::from_run("case-a", "rr", "dtbl", EngineMode::Event, true, 1, 600, 1.0);
        let (ok, report) =
            check_regressions(&[r], &[("case-a".to_string(), 1000.0)], 30.0, Some((8, 1)));
        assert!(ok, "{report}");
        assert!(report.contains("MISS case-a"), "{report}");
        assert!(report.contains("8-cpu host"), "{report}");
        assert!(!report.contains("FAIL"), "{report}");
    }

    #[test]
    fn a_case_without_baseline_never_fails() {
        let r = HotloopResult::from_run(
            "brand-new",
            "rr",
            "dtbl",
            EngineMode::Event,
            true,
            1,
            600,
            1.0,
        );
        let (ok, report) = check_regressions(&[r], &[("case-a".to_string(), 1000.0)], 30.0, None);
        assert!(ok, "{report}");
        assert!(report.contains("NEW  brand-new"), "{report}");
    }

    #[test]
    fn launch_storm_spills_and_is_engine_identical() {
        // A short storm must retire one chain TB plus `leaves` leaf TBs
        // per generation, overflow the two-slot buffer, and produce
        // identical statistics under both engines.
        let run = |engine: EngineMode| {
            let mut cfg = GpuConfig::small_test();
            cfg.engine_mode = engine;
            cfg.launch_limits = storm_limits();
            let model = LaunchModelKind::Cdp;
            let source = LaunchStormSource { depth: 5, leaves: 3 };
            let mut sim = Simulator::new(cfg, Box::new(source))
                .with_launch_model(model.build(LaunchLatency::default_for(model)));
            sim.launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(32, 8, 0))
                .expect("storm root launches");
            sim.run_to_completion().expect("storm completes")
        };
        let event = run(EngineMode::Event);
        let stepped = run(EngineMode::CycleStepped);
        assert_eq!(event, stepped);
        // Generations 0..4 each retire one chain TB; 1..4 add 3 leaves.
        assert_eq!(event.tb_records.len(), 5 + 4 * 3);
        let spills = event
            .launch_counters
            .iter()
            .find(|(k, _)| *k == "spill_events")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(spills > 0, "storm never overflowed the buffer: {:?}", event.launch_counters);
        // Every link pays at least the CDP base latency.
        assert!(event.cycles > 4 * 2500, "cycles = {}", event.cycles);
    }
}
