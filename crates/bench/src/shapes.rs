//! Machine-checkable shape assertions over a sweep document.
//!
//! EXPERIMENTS.md argues that this reproduction validates the paper's
//! *shapes* — orderings between schedulers, which benchmarks win and
//! lose, where the outliers sit — rather than absolute numbers. Each
//! assertion here encodes one of those qualitative claims as a predicate
//! over `repro.json` ([`SweepDoc`]), with an ID that EXPERIMENTS.md
//! cross-references, so `repro check` turns the repository's scientific
//! claim into an enforced invariant instead of prose.
//!
//! Thresholds are deliberately looser than the measured paper-scale
//! values: they must hold at every scale the CI gate runs (`ci` and
//! up), not just at the scale the numbers in EXPERIMENTS.md were
//! measured at. Claims that only fully develop at full input sizes
//! (TB-Pri's L2 gain, the zero-overflow queue budget) check their
//! strict form when the document was swept at paper scale and a
//! relaxed form otherwise; the `detail` line records which form ran.

use crate::experiments::MatrixRecords;
use crate::sweep::SweepDoc;
use gpu_sim::cache::ReuseClass;
use gpu_sim::stats::Pow2Hist;
use sim_metrics::harness::{LocalityRecord, RunRecord, SchedulerKind};
use sim_metrics::report::mean;

/// The result of evaluating one shape assertion.
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    /// Stable assertion ID (cross-referenced from EXPERIMENTS.md).
    pub id: &'static str,
    /// The qualitative claim being checked, in one sentence.
    pub claim: &'static str,
    /// Whether the sweep satisfies the claim.
    pub passed: bool,
    /// Measured values behind the verdict.
    pub detail: String,
}

const RR: &str = "rr";
const TBPRI: &str = "tb-pri";
const SMX: &str = "smx-bind";
const ADAPTIVE: &str = "adaptive-bind";
const DTBL: &str = "dtbl";
const CDP: &str = "cdp";

struct Ctx<'a> {
    doc: &'a SweepDoc,
    matrix: MatrixRecords,
}

impl Ctx<'_> {
    fn runs(&self, model: &str, sched: &str) -> Vec<&RunRecord> {
        self.matrix
            .records()
            .iter()
            .filter(|r| r.launch_model == model && r.scheduler == sched)
            .collect()
    }

    /// Mean of a metric over all runs of one (model, scheduler) column.
    fn mean_metric(&self, model: &str, sched: &str, f: impl Fn(&RunRecord) -> f64) -> f64 {
        let vs: Vec<f64> = self.runs(model, sched).into_iter().map(f).collect();
        mean(&vs)
    }

    /// IPC normalized to the same workload/model round-robin baseline.
    fn norm_ipc(&self, workload: &str, model: &str, sched: &str) -> Option<f64> {
        let r = self.matrix.get(workload, model, sched)?;
        self.matrix.normalized_ipc(r)
    }

    /// Suite-mean normalized IPC of one (model, scheduler) column.
    fn mean_norm_ipc(&self, model: &str, sched: &str) -> f64 {
        let vs: Vec<f64> =
            self.matrix.workloads().iter().filter_map(|w| self.norm_ipc(w, model, sched)).collect();
        mean(&vs)
    }

    /// Whether the document was swept at full paper scale, where the
    /// strict (EXPERIMENTS.md-measured) form of a claim is enforced.
    fn paper_scale(&self) -> bool {
        self.doc.scale == "paper"
    }

    /// Mean of a locality-provenance metric over the profiled runs of
    /// one (model, scheduler) column. Runs without a locality record
    /// (pre-v2 documents) are skipped; the mean of none is 0.
    fn mean_loc(&self, model: &str, sched: &str, f: impl Fn(&LocalityRecord) -> f64) -> f64 {
        let vs: Vec<f64> = self
            .runs(model, sched)
            .into_iter()
            .filter_map(|r| r.locality.as_ref().map(&f))
            .collect();
        mean(&vs)
    }

    /// Bound/stolen child-hit counters pooled over the profiled runs of
    /// one column (per-run shares are noisy when a run steals little).
    fn pooled_bind(&self, model: &str, sched: &str) -> (u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64);
        for r in self.runs(model, sched) {
            if let Some(loc) = &r.locality {
                t.0 += loc.bound_hits;
                t.1 += loc.bound_parent_child;
                t.2 += loc.stolen_hits;
                t.3 += loc.stolen_parent_child;
            }
        }
        t
    }
}

type Check = fn(&Ctx) -> (bool, String);

/// The assertion catalog: `(id, claim, check)`.
const SHAPES: &[(&str, &str, Check)] = &[
    (
        "matrix-complete",
        "The sweep ran every workload x launch model x scheduler cell without failures",
        |ctx| {
            let workloads = ctx.matrix.workloads().len();
            let expected = workloads * 2 * SchedulerKind::all().len();
            let got = ctx.matrix.records().len();
            let ok = ctx.doc.failures.is_empty() && workloads == 16 && got == expected;
            (
                ok,
                format!(
                    "{got} records over {workloads} workloads (expected 16 x 2 x 4 = 128), \
                     {} failures",
                    ctx.doc.failures.len()
                ),
            )
        },
    ),
    (
        "fig9-dtbl-ordering",
        "Under DTBL the suite-mean normalized IPC orders RR < TB-Pri < SMX-Bind <= Adaptive-Bind",
        |ctx| {
            let t = ctx.mean_norm_ipc(DTBL, TBPRI);
            let s = ctx.mean_norm_ipc(DTBL, SMX);
            let a = ctx.mean_norm_ipc(DTBL, ADAPTIVE);
            // TB-Pri's gain is an L2-reuse effect that only develops at
            // full input sizes; below paper scale the enforced shape is
            // TB-Pri <= SMX-Bind <= Adaptive-Bind with a real Adaptive
            // gain.
            let ok = if ctx.paper_scale() {
                t > 1.02 && s > t && a >= s - 0.02
            } else {
                s >= t && a >= s - 0.02 && a > 1.05
            };
            (
                ok,
                format!(
                    "tb-pri {t:.3}x, smx-bind {s:.3}x, adaptive-bind {a:.3}x (rr = 1){}",
                    if ctx.paper_scale() { "" } else { " [relaxed below paper scale]" }
                ),
            )
        },
    ),
    (
        "fig9-adaptive-ge-tbpri-dtbl",
        "Adaptive-Bind IPC >= TB-Pri on at least 12 of the 16 DTBL benchmark pairs",
        |ctx| {
            let mut wins = 0usize;
            let mut total = 0usize;
            for w in ctx.matrix.workloads() {
                let (Some(a), Some(t)) =
                    (ctx.norm_ipc(&w, DTBL, ADAPTIVE), ctx.norm_ipc(&w, DTBL, TBPRI))
                else {
                    continue;
                };
                total += 1;
                if a >= t - 0.01 {
                    wins += 1;
                }
            }
            (total == 16 && wins >= 12, format!("{wins} of {total} pairs"))
        },
    ),
    (
        "fig9-dtbl-headline",
        "Adaptive-Bind delivers a double-digit suite-mean gain over RR under DTBL",
        |ctx| {
            let a = ctx.mean_norm_ipc(DTBL, ADAPTIVE);
            // Measured 1.47x at paper scale, 1.14x at ci scale.
            let floor = if ctx.paper_scale() { 1.15 } else { 1.10 };
            (a >= floor, format!("adaptive-bind {a:.3}x (floor {floor:.2}x)"))
        },
    ),
    (
        "fig9-cdp-muted",
        "CDP gains are smaller than DTBL gains (launch-bound; Section IV-C/D)",
        |ctx| {
            let a_cdp = ctx.mean_norm_ipc(CDP, ADAPTIVE);
            let a_dtbl = ctx.mean_norm_ipc(DTBL, ADAPTIVE);
            let t_cdp = ctx.mean_norm_ipc(CDP, TBPRI);
            let t_dtbl = ctx.mean_norm_ipc(DTBL, TBPRI);
            // The TB-Pri comparison needs TB-Pri's DTBL gain to exist,
            // which only happens at paper scale (see fig9-dtbl-ordering).
            let ok = a_cdp < a_dtbl && (!ctx.paper_scale() || t_cdp < t_dtbl);
            (
                ok,
                format!(
                    "adaptive {a_cdp:.3}x CDP vs {a_dtbl:.3}x DTBL; \
                     tb-pri {t_cdp:.3}x CDP vs {t_dtbl:.3}x DTBL{}",
                    if ctx.paper_scale() { "" } else { " [adaptive leg only below paper scale]" }
                ),
            )
        },
    ),
    (
        "fig9-smxbind-skew-pathology",
        "Adaptive-Bind recovers the skewed join workloads where pure SMX binding load-imbalances",
        |ctx| {
            let mut ok = true;
            let mut parts = Vec::new();
            for w in ["join-uniform", "join-gaussian"] {
                let (Some(a), Some(s)) =
                    (ctx.norm_ipc(w, DTBL, ADAPTIVE), ctx.norm_ipc(w, DTBL, SMX))
                else {
                    ok = false;
                    parts.push(format!("{w}: missing"));
                    continue;
                };
                ok &= a > s;
                parts.push(format!("{w}: adaptive {a:.3}x vs smx-bind {s:.3}x"));
            }
            (ok, parts.join("; "))
        },
    ),
    ("fig7-tbpri-l2-dtbl", "TB-Pri raises the suite-mean L2 hit rate over RR under DTBL", |ctx| {
        let rr = ctx.mean_metric(DTBL, RR, |r| r.l2_hit_rate);
        let t = ctx.mean_metric(DTBL, TBPRI, |r| r.l2_hit_rate);
        (t > rr, format!("tb-pri {:.1}% vs rr {:.1}%", t * 100.0, rr * 100.0))
    }),
    (
        "fig7-binding-trades-l2-dtbl",
        "SMX binding trades L2 hits for L1 hits: SMX-Bind's L2 hit rate sits below TB-Pri's",
        |ctx| {
            let t = ctx.mean_metric(DTBL, TBPRI, |r| r.l2_hit_rate);
            let s = ctx.mean_metric(DTBL, SMX, |r| r.l2_hit_rate);
            (s < t, format!("smx-bind {:.1}% vs tb-pri {:.1}%", s * 100.0, t * 100.0))
        },
    ),
    (
        "fig8-binding-l1-dtbl",
        "The binding policies lift the suite-mean L1 hit rate well above RR under DTBL",
        |ctx| {
            let rr = ctx.mean_metric(DTBL, RR, |r| r.l1_hit_rate);
            let s = ctx.mean_metric(DTBL, SMX, |r| r.l1_hit_rate);
            let a = ctx.mean_metric(DTBL, ADAPTIVE, |r| r.l1_hit_rate);
            let ok = s > rr + 0.03 && a > rr + 0.03;
            (
                ok,
                format!(
                    "rr {:.1}%, smx-bind {:.1}%, adaptive-bind {:.1}%",
                    rr * 100.0,
                    s * 100.0,
                    a * 100.0
                ),
            )
        },
    ),
    (
        "fig8-tbpri-l1-flat-dtbl",
        "TB-Pri's gain is an L2 effect: its L1 hit rate stays within 3pp of RR under DTBL",
        |ctx| {
            let rr = ctx.mean_metric(DTBL, RR, |r| r.l1_hit_rate);
            let t = ctx.mean_metric(DTBL, TBPRI, |r| r.l1_hit_rate);
            ((t - rr).abs() < 0.03, format!("tb-pri {:.1}% vs rr {:.1}%", t * 100.0, rr * 100.0))
        },
    ),
    (
        "fig2-parent-child-dominant",
        "Parent-child sharing dominates adjacent parent-parent sharing: the suite average is \
         at least 1.5x higher and nearly every workload follows (bht is Figure 2's outlier)",
        |ctx| {
            let n = ctx.doc.footprints.len();
            let pc = mean(&ctx.doc.footprints.iter().map(|f| f.parent_child).collect::<Vec<_>>());
            let pp = mean(&ctx.doc.footprints.iter().map(|f| f.parent_parent).collect::<Vec<_>>());
            let wins =
                ctx.doc.footprints.iter().filter(|f| f.parent_child > f.parent_parent).count();
            let ok = n == 16 && pc > pp * 1.5 && wins >= 14;
            (
                ok,
                format!(
                    "avg parent-child {:.1}% vs parent-parent {:.1}%; holds on {wins} of {n} \
                     workloads",
                    pc * 100.0,
                    pp * 100.0
                ),
            )
        },
    ),
    (
        "fig2-regx-sibling-outlier",
        "regx is the child-sibling sharing outlier: every regx input outranks every other workload",
        |ctx| {
            let regx_min = ctx
                .doc
                .footprints
                .iter()
                .filter(|f| f.workload.starts_with("regx"))
                .map(|f| f.child_sibling)
                .fold(f64::INFINITY, f64::min);
            let other_max = ctx
                .doc
                .footprints
                .iter()
                .filter(|f| !f.workload.starts_with("regx"))
                .map(|f| f.child_sibling)
                .fold(0.0f64, f64::max);
            (
                regx_min.is_finite() && regx_min > other_max,
                format!(
                    "regx min {:.1}% vs best non-regx {:.1}%",
                    regx_min * 100.0,
                    other_max * 100.0
                ),
            )
        },
    ),
    (
        "fig2-amr-join-sibling-low",
        "amr and join children own private regions: child-sibling sharing below 10%",
        |ctx| {
            let mut ok = true;
            let mut parts = Vec::new();
            let mut seen = 0;
            for f in &ctx.doc.footprints {
                if f.workload == "amr" || f.workload.starts_with("join") {
                    seen += 1;
                    ok &= f.child_sibling < 0.10;
                    parts.push(format!("{} {:.1}%", f.workload, f.child_sibling * 100.0));
                }
            }
            (ok && seen == 3, parts.join(", "))
        },
    ),
    (
        "overhead-queue-budget",
        "The Section IV-E benchmarks respect the 128-entry on-chip queue budget under \
         Adaptive-Bind/DTBL: zero overflows at paper scale, spills under 5% of pushes otherwise",
        |ctx| {
            let names = ["bfs-citation", "amr", "join-gaussian", "regx-strings"];
            let mut ok = true;
            let mut parts = Vec::new();
            let mut seen = 0usize;
            for r in ctx.runs(DTBL, ADAPTIVE) {
                if !names.contains(&r.workload.as_str()) {
                    continue;
                }
                seen += 1;
                if ctx.paper_scale() {
                    ok &= r.max_queue_depth <= 128 && r.queue_overflows == 0;
                } else {
                    // Smaller inputs launch burstier relative to drain
                    // rate; the spill path may fire but must stay rare.
                    ok &= r.queue_overflows * 20 <= r.queue_pushes;
                }
                parts.push(format!(
                    "{} depth {} ovf {}/{}",
                    r.workload, r.max_queue_depth, r.queue_overflows, r.queue_pushes
                ));
            }
            ok &= seen == names.len();
            (ok, parts.join("; "))
        },
    ),
    (
        "launch-table-overflow-accounting",
        "DTBL aggregation-table overflow accounting is sound: exactly zero overflows on the \
         CDP path (which has no table), never more overflows than dynamic TBs under DTBL, \
         and the binding schedulers accumulate no more overflows than RR (locality-aware \
         scheduling relieves launch-path pressure, it never adds to it)",
        |ctx| {
            let cdp_ovf: u64 = ctx
                .matrix
                .records()
                .iter()
                .filter(|r| r.launch_model == CDP)
                .map(|r| r.table_overflows)
                .sum();
            let mut bounded = true;
            let mut per_sched = Vec::new();
            for sched in [RR, TBPRI, SMX, ADAPTIVE] {
                let mut ovf = 0u64;
                for r in ctx.runs(DTBL, sched) {
                    bounded &= r.table_overflows <= r.dynamic_tbs as u64;
                    ovf += r.table_overflows;
                }
                per_sched.push((sched, ovf));
            }
            let rr_ovf = per_sched[0].1;
            let relieved = per_sched[1..].iter().all(|&(_, ovf)| ovf <= rr_ovf);
            let ok = cdp_ovf == 0 && bounded && relieved;
            let detail = format!(
                "cdp {cdp_ovf}; dtbl {}",
                per_sched.iter().map(|(s, o)| format!("{s} {o}")).collect::<Vec<_>>().join(", ")
            );
            (ok, detail)
        },
    ),
    (
        "sched-smxbind-binding-invariants",
        "Pure SMX-Bind never steals and places every child on its parent's SMX",
        |ctx| {
            let mut ok = true;
            let mut bad = Vec::new();
            for model in [CDP, DTBL] {
                for r in ctx.runs(model, SMX) {
                    if r.parent_smx_affinity != 1.0 || r.steals != 0 {
                        ok = false;
                        bad.push(format!(
                            "{}/{}: affinity {:.2}, steals {}",
                            r.workload, r.launch_model, r.parent_smx_affinity, r.steals
                        ));
                    }
                }
            }
            (
                ok,
                if bad.is_empty() {
                    "all smx-bind runs fully bound".to_string()
                } else {
                    bad.join("; ")
                },
            )
        },
    ),
    (
        "sched-adaptive-steals-active",
        "Adaptive-Bind's stage-3 stealing actually fires under DTBL",
        |ctx| {
            let total: u64 = ctx.runs(DTBL, ADAPTIVE).iter().map(|r| r.steals).sum();
            (total > 0, format!("{total} steals across the DTBL suite"))
        },
    ),
    (
        "loc-hits-partition",
        "Provenance is total: in every profiled run the per-class hit counts sum exactly to \
         the cache's hits, at both levels",
        |ctx| {
            let mut checked = 0usize;
            let mut bad = Vec::new();
            for r in ctx.matrix.records() {
                let Some(loc) = &r.locality else { continue };
                checked += 1;
                let l1: u64 = loc.l1_class_hits.iter().sum();
                let l2: u64 = loc.l2_class_hits.iter().sum();
                if l1 != loc.l1_hits
                    || l2 != loc.l2_hits
                    || loc.l2_same_smx + loc.l2_cross_smx != loc.l2_hits
                {
                    bad.push(format!(
                        "{}/{}/{}: L1 {l1}/{}, L2 {l2}/{}",
                        r.workload, r.launch_model, r.scheduler, loc.l1_hits, loc.l2_hits
                    ));
                }
            }
            let ok = checked == ctx.matrix.records().len() && checked > 0 && bad.is_empty();
            (
                ok,
                if bad.is_empty() {
                    format!("{checked} profiled runs, all partitions exact")
                } else {
                    bad.join("; ")
                },
            )
        },
    ),
    (
        "loc-l1-parent-child-ordering",
        "The binding policies convert L1 hits into parent-child reuse: SMX-Bind's \
         parent-child share of L1 hits exceeds TB-Pri's, which is at least RR's, under DTBL",
        |ctx| {
            let pc = |loc: &LocalityRecord| loc.l1_share(ReuseClass::ParentChild);
            let rr = ctx.mean_loc(DTBL, RR, pc);
            let t = ctx.mean_loc(DTBL, TBPRI, pc);
            let s = ctx.mean_loc(DTBL, SMX, pc);
            let ok = s > t && t >= rr - 0.005 && s > rr + 0.02;
            (
                ok,
                format!(
                    "parent-child L1 share: rr {:.1}%, tb-pri {:.1}%, smx-bind {:.1}%",
                    rr * 100.0,
                    t * 100.0,
                    s * 100.0
                ),
            )
        },
    ),
    (
        "loc-l2-tbpri-parent-child",
        "TB-Pri's L2 gain is lineage reuse: its parent-child share of L2 hits exceeds RR's \
         under DTBL",
        |ctx| {
            let pc = |loc: &LocalityRecord| loc.l2_share(ReuseClass::ParentChild);
            let rr = ctx.mean_loc(DTBL, RR, pc);
            let t = ctx.mean_loc(DTBL, TBPRI, pc);
            (
                t > rr,
                format!("parent-child L2 share: tb-pri {:.1}% vs rr {:.1}%", t * 100.0, rr * 100.0),
            )
        },
    ),
    (
        "loc-adaptive-stolen-reuse",
        "Stealing costs locality: under Adaptive-Bind/DTBL, stolen child TBs hit their \
         parent's lines at a lower rate than bound ones",
        |ctx| {
            let (bh, bpc, sh, spc) = ctx.pooled_bind(DTBL, ADAPTIVE);
            let bound = if bh == 0 { 0.0 } else { bpc as f64 / bh as f64 };
            let stolen = if sh == 0 { 0.0 } else { spc as f64 / sh as f64 };
            // Stolen TBs exist whenever stage 3 fires (see
            // sched-adaptive-steals-active); require real traffic so the
            // comparison is meaningful.
            let ok = bh > 0 && sh > 0 && bound > stolen;
            (
                ok,
                format!(
                    "bound parent-child rate {:.1}% ({bpc}/{bh}) vs stolen {:.1}% ({spc}/{sh})",
                    bound * 100.0,
                    stolen * 100.0
                ),
            )
        },
    ),
    (
        "engine-wake-partition",
        "Engine introspection is total: in every engine-profiled run the per-source wake \
         counts sum exactly to the loop-iteration count (vacuously true on unprofiled \
         documents)",
        |ctx| {
            let mut checked = 0usize;
            let mut bad = Vec::new();
            for r in ctx.matrix.records() {
                let Some(eng) = &r.engine else { continue };
                checked += 1;
                let total: u64 = eng.wake_counts.iter().sum();
                if total != eng.loop_iterations || eng.loop_iterations == 0 {
                    bad.push(format!(
                        "{}/{}/{}: wake sum {total} vs {} iterations",
                        r.workload, r.launch_model, r.scheduler, eng.loop_iterations
                    ));
                }
            }
            let ok = bad.is_empty();
            (
                ok,
                if checked == 0 {
                    "no engine introspection in this document (run `repro profile`)".to_string()
                } else if ok {
                    format!("{checked} profiled runs, all partitions exact")
                } else {
                    bad.join("; ")
                },
            )
        },
    ),
    (
        "engine-event-elides-idle",
        "The event engine earns its keep: every engine-profiled run's loop iterations plus \
         recorded jump lengths reconstruct its cycle count exactly, and across the matrix \
         the engine elides a strictly positive share of all simulated cycles (vacuously \
         true on unprofiled documents)",
        |ctx| {
            let mut checked = 0usize;
            let mut bad = Vec::new();
            let mut total_iters = 0u64;
            let mut total_cycles = 0u64;
            for r in ctx.matrix.records() {
                let Some(eng) = &r.engine else { continue };
                checked += 1;
                total_iters += eng.loop_iterations;
                total_cycles += r.cycles;
                // Every iteration advances the clock by exactly one,
                // plus its recorded jump; a completed run's cycle count
                // is therefore reconstructible to the cycle.
                let covered = eng.loop_iterations + eng.jump_len.sum;
                if covered != r.cycles {
                    bad.push(format!(
                        "{}/{}/{}: {} iterations + {} jumped != {} cycles",
                        r.workload,
                        r.launch_model,
                        r.scheduler,
                        eng.loop_iterations,
                        eng.jump_len.sum,
                        r.cycles
                    ));
                }
            }
            let elided_ok = checked == 0 || total_iters < total_cycles;
            let ok = bad.is_empty() && elided_ok;
            (
                ok,
                if checked == 0 {
                    "no engine introspection in this document (run `repro profile`)".to_string()
                } else if ok {
                    format!(
                        "{checked} profiled runs; {total_iters} iterations over {total_cycles} \
                         cycles ({:.1}% elided)",
                        100.0 * (1.0 - total_iters as f64 / total_cycles.max(1) as f64)
                    )
                } else if bad.is_empty() {
                    format!(
                        "only {:.1}% of {total_cycles} cycles elided ({total_iters} iterations)",
                        100.0 * (1.0 - total_iters as f64 / total_cycles.max(1) as f64)
                    )
                } else {
                    bad.join("; ")
                },
            )
        },
    ),
    (
        "lat-partition-exact",
        "Latency attribution is total: in every latency-profiled run the lifecycle \
         components (launch path, queue wait, dispatch gap, exec) partition each TB's \
         lifetime exactly — zero ordering violations, every component histogram covers \
         every dispatched TB, and the component sums telescope to the lifetime sum \
         (vacuously true on unprofiled documents)",
        |ctx| {
            let mut checked = 0usize;
            let mut bad = Vec::new();
            for r in ctx.matrix.records() {
                let Some(lat) = &r.latency else { continue };
                checked += 1;
                let counts_ok = [&lat.launch_path, &lat.queue_wait, &lat.dispatch_gap, &lat.exec]
                    .iter()
                    .all(|h| h.count == lat.lifetime.count);
                let parts_sum =
                    lat.launch_path.sum + lat.queue_wait.sum + lat.dispatch_gap.sum + lat.exec.sum;
                let covered = lat.tbs == r.total_tbs as u64 && lat.lifetime.count == lat.tbs;
                if lat.partition_violations != 0
                    || !counts_ok
                    || parts_sum != lat.lifetime.sum
                    || !covered
                {
                    bad.push(format!(
                        "{}/{}/{}: {} violations, {} of {} TBs, component sum {parts_sum} vs \
                         lifetime {}",
                        r.workload,
                        r.launch_model,
                        r.scheduler,
                        lat.partition_violations,
                        lat.lifetime.count,
                        r.total_tbs,
                        lat.lifetime.sum
                    ));
                }
            }
            let ok = bad.is_empty();
            (
                ok,
                if checked == 0 {
                    "no latency attribution in this document (run `repro latency`)".to_string()
                } else if ok {
                    format!("{checked} profiled runs, all partitions exact")
                } else {
                    bad.join("; ")
                },
            )
        },
    ),
    (
        "lat-child-queue-wait-ordering",
        "Priority-aware dispatch shortens child queueing: pooled over the DTBL column, \
         the child queue-wait p95 under TB-Pri sits below RR's (vacuously true on \
         unprofiled documents)",
        |ctx| {
            // Pool each column's child queue-wait histograms: per-run
            // quantiles are noisy for workloads that launch few children.
            let pooled = |sched: &str| -> Pow2Hist {
                let mut acc = Pow2Hist::default();
                for r in ctx.runs(DTBL, sched) {
                    if let Some(lat) = &r.latency {
                        acc.merge(&lat.child_queue_wait);
                    }
                }
                acc
            };
            let (t, rr) = (pooled(TBPRI), pooled(RR));
            if t.count == 0 || rr.count == 0 {
                return (
                    true,
                    "no latency attribution in this document (run `repro latency`)".to_string(),
                );
            }
            let (tp, rp) = (t.percentile(0.95), rr.percentile(0.95));
            (
                tp < rp,
                format!(
                    "child queue-wait p95: tb-pri {tp} vs rr {rp} cycles \
                     (means {:.0} vs {:.0}, n {} vs {})",
                    t.sum as f64 / t.count as f64,
                    rr.sum as f64 / rr.count as f64,
                    t.count,
                    rr.count
                ),
            )
        },
    ),
];

/// The overall verdict `repro check` reports for one document, mapped
/// onto its exit codes: 0 pass, 1 assertion violation, 2 degraded input
/// (3, I/O or corruption, never reaches evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckVerdict {
    /// Healthy document; every assertion passed.
    Pass,
    /// Healthy document; at least one assertion was violated.
    Violation,
    /// The document carries failed cells. Assertions were evaluated
    /// over the surviving cells only, so FAIL verdicts may be vacuous
    /// (caused by the missing cells, not by the claims). Degradation
    /// dominates: `matrix-complete` necessarily fails here, and the
    /// caller should treat the run as incomplete, not as refuted.
    Degraded,
}

/// Evaluates a document and classifies the overall outcome. Degraded
/// documents (any failed cells) report [`CheckVerdict::Degraded`]
/// whatever the per-assertion verdicts say — with cells missing, a
/// failed assertion cannot be distinguished from a vacuously-failed one.
pub fn check_document(doc: &SweepDoc) -> (Vec<ShapeOutcome>, CheckVerdict) {
    let outcomes = evaluate_shapes(doc);
    let verdict = if !doc.failures.is_empty() {
        CheckVerdict::Degraded
    } else if outcomes.iter().any(|o| !o.passed) {
        CheckVerdict::Violation
    } else {
        CheckVerdict::Pass
    };
    (outcomes, verdict)
}

/// [`render_shape_report`] with the degraded-mode preamble: for a
/// partial document the `DEGRADED` banner and failures table come
/// first, plus a note that the assertions ran over survivors only. For
/// a healthy document the output is byte-identical to
/// [`render_shape_report`] (the CI goldens depend on that).
pub fn render_check_report(doc: &SweepDoc, outcomes: &[ShapeOutcome]) -> String {
    let mut out = String::new();
    if let Some(banner) = doc.degraded_banner() {
        out.push_str(&banner);
        out.push_str(&format!(
            "note: {} of {} cells survive; the assertions below were evaluated over \
             survivors only, and FAIL verdicts may be vacuous (missing cells, not \
             refuted claims)\n\n",
            doc.records.len(),
            doc.total_cells()
        ));
    }
    out.push_str(&render_shape_report(outcomes));
    out
}

/// Evaluates every shape assertion against a sweep document.
pub fn evaluate_shapes(doc: &SweepDoc) -> Vec<ShapeOutcome> {
    let ctx = Ctx { doc, matrix: MatrixRecords::from_records(doc.records.clone()) };
    SHAPES
        .iter()
        .map(|(id, claim, check)| {
            let (passed, detail) = check(&ctx);
            ShapeOutcome { id, claim, passed, detail }
        })
        .collect()
}

/// Renders the `repro check` report: one PASS/FAIL line per assertion
/// plus a summary line.
pub fn render_shape_report(outcomes: &[ShapeOutcome]) -> String {
    let mut out = String::from("Shape assertions (EXPERIMENTS.md claims as invariants)\n\n");
    for o in outcomes {
        out.push_str(&format!(
            "{} {}\n    {}\n    measured: {}\n",
            if o.passed { "PASS" } else { "FAIL" },
            o.id,
            o.claim,
            o.detail
        ));
    }
    let failed = outcomes.iter().filter(|o| !o.passed).count();
    out.push_str(&format!(
        "\n{} of {} assertions passed{}\n",
        outcomes.len() - failed,
        outcomes.len(),
        if failed > 0 { format!(", {failed} FAILED") } else { String::new() }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertion_ids_are_unique_and_plentiful() {
        let mut ids: Vec<&str> = SHAPES.iter().map(|(id, _, _)| *id).collect();
        assert!(ids.len() >= 10, "the reproduction gate needs at least 10 shape assertions");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), SHAPES.len(), "duplicate assertion IDs");
    }

    #[test]
    fn report_marks_failures() {
        let outcomes = vec![
            ShapeOutcome { id: "a", claim: "c", passed: true, detail: "d".into() },
            ShapeOutcome { id: "b", claim: "c", passed: false, detail: "d".into() },
        ];
        let report = render_shape_report(&outcomes);
        assert!(report.contains("PASS a"));
        assert!(report.contains("FAIL b"));
        assert!(report.contains("1 of 2 assertions passed, 1 FAILED"));
    }
}
