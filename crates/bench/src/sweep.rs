//! Parallel sweep executor and the `repro.json` sweep document.
//!
//! [`run_cells`] is a work-queue executor: `jobs` scoped worker threads
//! pull cell indices from a shared atomic counter, run each cell inside
//! `catch_unwind` (one panicking run cannot take down the sweep), and
//! store results *by input index*, so the output order — and therefore
//! every rendered report — is identical for any job count and any
//! completion order. Determinism of the contents comes from the cells
//! themselves: each cell fully describes its run (workload generated
//! from a seed fixed at sweep-construction time, launch model,
//! scheduler, GPU config), never from execution order.
//!
//! [`SweepDoc`] is the machine-readable artifact (`repro.json`) that
//! `repro all` emits alongside the text report and that `repro check`
//! evaluates shape assertions against (see [`crate::shapes`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dynpar::LaunchModelKind;
use gpu_sim::config::{EngineMode, GpuConfig};
use sim_metrics::harness::{RunRecord, SchedulerKind};
use sim_metrics::json::{parse, run_from_json, run_to_json, Json};
use sim_metrics::FootprintAnalysis;
use wdsl::{compiled_suite_seeded, ExecMode};
use workloads::{suite_seeded, Scale, Workload};

use crate::resilience::{run_matrix_cells_resilient, Resilience, ResilienceReport};

/// Which program-generation path serves `Workload → TbProgram` during a
/// sweep: the legacy Rust generators, or each workload's DSL port
/// compiled to bytecode and served by the `wdsl` VM. The two paths are
/// program-byte-identical (the wdsl suite-equivalence tests enforce it),
/// so a sweep document built under either must render the same bytes —
/// the CI `dsl-differential` job diffs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgramPath {
    /// The legacy Rust program generators (the oracle).
    #[default]
    Generator,
    /// DSL ports compiled to bytecode, served by the verified VM.
    Dsl,
}

impl ProgramPath {
    /// Stable name for flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            ProgramPath::Generator => "generator",
            ProgramPath::Dsl => "dsl",
        }
    }

    /// Parses a `--programs` flag value.
    pub fn parse(s: &str) -> Option<ProgramPath> {
        match s {
            "generator" => Some(ProgramPath::Generator),
            "dsl" => Some(ProgramPath::Dsl),
            _ => None,
        }
    }
}

/// The full Table II suite served through the chosen program path.
///
/// # Errors
///
/// The DSL path reports a workload whose port fails to compile (a repo
/// bug the wdsl corpus tests catch first).
pub fn suite_for_path(
    scale: Scale,
    seed: u64,
    path: ProgramPath,
) -> Result<Vec<Arc<dyn Workload>>, String> {
    match path {
        ProgramPath::Generator => Ok(suite_seeded(scale, seed)),
        ProgramPath::Dsl => compiled_suite_seeded(scale, seed, ExecMode::Vm)
            .map_err(|e| format!("DSL suite compilation failed: {e}")),
    }
}

/// The default worker count: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Runs `run` over `cells` on up to `jobs` worker threads and returns
/// one result per cell, in input order. A panicking cell yields
/// `Err(message)` for that cell only; all other cells still run.
pub fn run_cells<I, T, F>(cells: &[I], jobs: usize, run: F) -> Vec<Result<T, String>>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let jobs = jobs.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..cells.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| run(&cells[i])))
                    .map_err(|payload| panic_message(payload.as_ref()));
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots.into_iter().map(|slot| slot.into_inner().expect("slot lock").expect("cell ran")).collect()
}

/// [`run_cells`] for infallible work: unwraps every result, re-raising
/// the first worker panic (with its message) on the caller's thread.
pub fn parallel_map<I, T, F>(cells: &[I], jobs: usize, run: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_cells(cells, jobs, run)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("sweep worker panicked: {e}")))
        .collect()
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One cell of the evaluation matrix.
#[derive(Clone)]
pub struct MatrixCell {
    /// The workload (generated from the sweep's seed).
    pub workload: Arc<dyn Workload>,
    /// Launch model under test.
    pub model: LaunchModelKind,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
}

/// A per-cell failure: which cell (by canonical matrix index), the
/// configuration that failed, how many supervised attempts were spent,
/// and the error or panic message. Reported in `repro.json` so CI can
/// attribute a broken run to its exact configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Index of the failed cell in canonical matrix order.
    pub cell_index: usize,
    /// Workload display name.
    pub workload: String,
    /// Launch model name.
    pub launch_model: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Supervised attempts spent before giving up (1 = no retries).
    pub attempts: u32,
    /// Error or panic message from the final attempt.
    pub error: String,
}

/// The outcome of a matrix sweep: completed records in canonical cell
/// order, plus any per-cell failures.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Completed runs, in canonical (workload × model × scheduler) order.
    pub records: Vec<RunRecord>,
    /// Failed cells, in canonical order.
    pub failures: Vec<SweepFailure>,
}

/// The canonical cell list for the full evaluation matrix at a scale:
/// every suite workload × both launch models × all four schedulers, in
/// the paper's figure order.
pub fn matrix_cells(scale: Scale, seed: u64) -> Vec<MatrixCell> {
    matrix_cells_for(&suite_seeded(scale, seed))
}

/// The canonical cell list over an explicit workload list (how the DSL
/// program path reuses the same matrix shape).
pub fn matrix_cells_for(workloads: &[Arc<dyn Workload>]) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for w in workloads {
        for model in LaunchModelKind::all() {
            for scheduler in SchedulerKind::all() {
                cells.push(MatrixCell { workload: w.clone(), model, scheduler });
            }
        }
    }
    cells
}

/// Runs the full evaluation matrix on `jobs` workers, with progress to
/// stderr. Every record (and the order of `records`) is deterministic
/// for any `jobs`; only the stderr progress interleaving varies.
pub fn run_matrix_jobs(scale: Scale, seed: u64, jobs: usize, cfg: &GpuConfig) -> SweepOutcome {
    let cells = matrix_cells(scale, seed);
    run_matrix_cells(&cells, jobs, cfg)
}

/// Runs an explicit cell list (the building block tests use to sweep
/// subsets quickly). This is the default-policy entry into the
/// resilient executor: no cache, no retries, no deadline — behavior
/// (records, failures, stderr progress) is identical to the
/// pre-resilience executor.
pub fn run_matrix_cells(cells: &[MatrixCell], jobs: usize, cfg: &GpuConfig) -> SweepOutcome {
    match run_matrix_cells_resilient(cells, jobs, cfg, "adhoc/0", &Resilience::default()) {
        Ok((outcome, _)) => outcome,
        // Setup can only fail when a cache directory is configured;
        // the default policy has none.
        Err(e) => panic!("sweep setup failed: {e}"),
    }
}

/// One workload's shared-footprint ratios in the sweep document
/// (Figure 2's per-row content).
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintRow {
    /// Workload display name.
    pub workload: String,
    /// Parent-child shared footprint ratio.
    pub parent_child: f64,
    /// Child-sibling shared footprint ratio.
    pub child_sibling: f64,
    /// Adjacent parent-parent shared footprint ratio.
    pub parent_parent: f64,
}

/// The `repro.json` document: everything the shape-assertion suite
/// needs, keyed by configuration, in canonical order.
#[derive(Debug, Clone)]
pub struct SweepDoc {
    /// Scale name ("tiny", "ci", "small", "paper").
    pub scale: String,
    /// Input seed the suite was generated with.
    pub seed: u64,
    /// Completed matrix runs in canonical order.
    pub records: Vec<RunRecord>,
    /// Failed cells (empty on a healthy sweep).
    pub failures: Vec<SweepFailure>,
    /// Per-workload shared-footprint ratios (Figure 2).
    pub footprints: Vec<FootprintRow>,
}

/// Schema version written to and required from `repro.json`. Version 2
/// added the optional per-run `locality` object (cache-hit provenance;
/// sweeps always profile, so matrix runs carry it). Version 3 added the
/// per-run `table_overflows` counter (DTBL aggregation-table overflows)
/// and the `launch_path` stall cause. Version 4 added the optional
/// per-run `engine` object (engine introspection; present only in
/// documents built by [`SweepDoc::build_profiled`] — default sweeps
/// keep it off so both engine modes render byte-identical documents).
/// Version 5 added the optional per-run `latency` object (TB lifecycle
/// attribution and launch-DAG critical path; carried by
/// [`SweepDoc::build_profiled`] documents only, for the same
/// cross-engine byte-diff reason — latency stats ARE bit-identical
/// across engine modes, but default sweeps stay minimal). Version 6
/// added the structured failure fields `cell_index` and `attempts`
/// (which cell of the canonical matrix failed and how many supervised
/// attempts the resilient executor spent on it).
pub const SWEEP_SCHEMA_VERSION: u64 = 6;

impl SweepDoc {
    /// Runs the matrix and the static footprint analysis at a scale and
    /// assembles the document. Both phases fan out over `jobs` workers.
    /// Locality provenance profiling is on: it is observational (cycle
    /// counts are bit-identical with it off), and having the provenance
    /// split in every `repro.json` is what lets `repro check` assert the
    /// *mechanism* — which scheduling relation produced the hits — not
    /// just the headline rates.
    pub fn build(scale: Scale, seed: u64, jobs: usize) -> SweepDoc {
        Self::build_with_engine(scale, seed, jobs, EngineMode::Event)
    }

    /// [`SweepDoc::build`] on an explicit engine mode. The CI
    /// `engine-equivalence` job builds the ci-scale document once per
    /// mode and diffs the rendered JSON byte-for-byte: the document
    /// carries no wall-clock fields, so any divergence is a real
    /// statistics difference between the engines.
    pub fn build_with_engine(
        scale: Scale,
        seed: u64,
        jobs: usize,
        engine_mode: EngineMode,
    ) -> SweepDoc {
        match Self::build_with_programs(scale, seed, jobs, engine_mode, ProgramPath::Generator) {
            Ok(doc) => doc,
            // The generator path never fails to build its suite.
            Err(e) => panic!("generator suite failed: {e}"),
        }
    }

    /// [`SweepDoc::build_with_engine`] on an explicit program path. The
    /// document carries no record of the path: programs are
    /// byte-identical across paths, so the rendered JSON must be too —
    /// the CI `dsl-differential` job builds the ci-scale document once
    /// per path and diffs the bytes.
    ///
    /// # Errors
    ///
    /// The DSL path reports suite compilation failures.
    pub fn build_with_programs(
        scale: Scale,
        seed: u64,
        jobs: usize,
        engine_mode: EngineMode,
        path: ProgramPath,
    ) -> Result<SweepDoc, String> {
        Self::build_resilient(scale, seed, jobs, engine_mode, path, &Resilience::default())
            .map(|(doc, _)| doc)
    }

    /// [`SweepDoc::build_with_programs`] under an explicit resilience
    /// policy: cell cache, retries, per-cell deadline, and (in tests)
    /// harness-level fault injection. Also returns what the policy did
    /// — cache hits/misses, journal damage repaired, retries spent.
    ///
    /// # Errors
    ///
    /// Reports DSL suite compilation failures and cache-directory or
    /// journal I/O setup errors. Per-cell failures are NOT errors: they
    /// degrade the document (see [`SweepDoc::degraded_banner`]).
    pub fn build_resilient(
        scale: Scale,
        seed: u64,
        jobs: usize,
        engine_mode: EngineMode,
        path: ProgramPath,
        res: &Resilience,
    ) -> Result<(SweepDoc, ResilienceReport), String> {
        Self::build_inner(
            scale,
            seed,
            jobs,
            engine_mode,
            false,
            suite_for_path(scale, seed, path)?,
            res,
        )
    }

    /// [`SweepDoc::build`] with engine introspection and latency
    /// attribution on: every run carries the optional `engine` object
    /// (wake-source counts, heap depth, jump lengths) and the optional
    /// `latency` object (lifecycle histograms, critical path). Kept out
    /// of the default build because the engine introspection
    /// legitimately differs between engine modes, which would break the
    /// cross-engine byte-diff; `repro profile` and `repro latency` are
    /// the consumers.
    pub fn build_profiled(
        scale: Scale,
        seed: u64,
        jobs: usize,
        engine_mode: EngineMode,
    ) -> SweepDoc {
        match Self::build_inner(
            scale,
            seed,
            jobs,
            engine_mode,
            true,
            suite_seeded(scale, seed),
            &Resilience::default(),
        ) {
            Ok((doc, _)) => doc,
            // The default policy configures no cache, so setup is
            // infallible.
            Err(e) => panic!("profiled sweep setup failed: {e}"),
        }
    }

    fn build_inner(
        scale: Scale,
        seed: u64,
        jobs: usize,
        engine_mode: EngineMode,
        profile_engine: bool,
        all: Vec<Arc<dyn Workload>>,
        res: &Resilience,
    ) -> Result<(SweepDoc, ResilienceReport), String> {
        let mut cfg = GpuConfig::kepler_k20c();
        cfg.profile_locality = true;
        cfg.engine_mode = engine_mode;
        cfg.profile_engine = profile_engine;
        cfg.profile_latency = profile_engine;
        let cells = matrix_cells_for(&all);
        let sweep_tag = format!("{}/{seed}", scale.name());
        let (outcome, report) = run_matrix_cells_resilient(&cells, jobs, &cfg, &sweep_tag, res)?;
        let footprints = parallel_map(&all, jobs, |w| {
            let a = FootprintAnalysis::analyze(w.as_ref());
            FootprintRow {
                workload: a.workload,
                parent_child: a.parent_child,
                child_sibling: a.child_sibling,
                parent_parent: a.parent_parent,
            }
        });
        let doc = SweepDoc {
            scale: scale.name().to_string(),
            seed,
            records: outcome.records,
            failures: outcome.failures,
            footprints,
        };
        Ok((doc, report))
    }

    /// Total matrix cells the document describes (completed + failed).
    pub fn total_cells(&self) -> usize {
        self.records.len() + self.failures.len()
    }

    /// The `DEGRADED` banner and failures table for a partial sweep, or
    /// `None` for a healthy one. `repro all` and `repro check` print
    /// this ahead of their reports instead of aborting: the surviving
    /// cells still carry evaluable signal.
    pub fn degraded_banner(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let mut out =
            format!("DEGRADED ({}/{} cells failed)\n\n", self.failures.len(), self.total_cells());
        out.push_str(&format!(
            "{:>5}  {:<18} {:<6} {:<14} {:>8}  error\n",
            "cell", "workload", "model", "scheduler", "attempts"
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "{:>5}  {:<18} {:<6} {:<14} {:>8}  {}\n",
                f.cell_index, f.workload, f.launch_model, f.scheduler, f.attempts, f.error
            ));
        }
        out.push('\n');
        Some(out)
    }

    /// Renders the document as `repro.json` (one run per line for
    /// readable diffs; the content is still ordinary JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SWEEP_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"scale\": {},\n", Json::Str(self.scale.clone()).render()));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"runs\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", run_to_json(r).render()));
        }
        out.push_str("  ],\n  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            let obj = Json::Obj(vec![
                ("cell_index".into(), Json::Num(f.cell_index.to_string())),
                ("workload".into(), Json::Str(f.workload.clone())),
                ("launch_model".into(), Json::Str(f.launch_model.clone())),
                ("scheduler".into(), Json::Str(f.scheduler.clone())),
                ("attempts".into(), Json::Num(f.attempts.to_string())),
                ("error".into(), Json::Str(f.error.clone())),
            ]);
            let sep = if i + 1 < self.failures.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", obj.render()));
        }
        out.push_str("  ],\n  \"footprints\": [\n");
        for (i, f) in self.footprints.iter().enumerate() {
            let obj = Json::Obj(vec![
                ("workload".into(), Json::Str(f.workload.clone())),
                ("parent_child".into(), Json::from_f64(f.parent_child)),
                ("child_sibling".into(), Json::from_f64(f.child_sibling)),
                ("parent_parent".into(), Json::from_f64(f.parent_parent)),
            ]);
            let sep = if i + 1 < self.footprints.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", obj.render()));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document written by [`SweepDoc::to_json`].
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors, a schema-version mismatch, or the
    /// first missing/mistyped field.
    pub fn from_json(text: &str) -> Result<SweepDoc, String> {
        let v = parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing integer field 'schema_version'")?;
        if version != SWEEP_SCHEMA_VERSION {
            return Err(format!(
                "repro.json schema version {version} (this binary reads {SWEEP_SCHEMA_VERSION})"
            ));
        }
        let scale = v.get("scale").and_then(Json::as_str).ok_or("missing 'scale'")?.to_string();
        let seed = v.get("seed").and_then(Json::as_u64).ok_or("missing 'seed'")?;
        let records = v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("missing array 'runs'")?
            .iter()
            .map(run_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let str_of = |o: &Json, key: &str| -> Result<String, String> {
            o.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let failures = v
            .get("failures")
            .and_then(Json::as_arr)
            .ok_or("missing array 'failures'")?
            .iter()
            .map(|o| {
                let u64_of = |key: &str| -> Result<u64, String> {
                    o.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("missing integer field '{key}'"))
                };
                Ok(SweepFailure {
                    cell_index: usize::try_from(u64_of("cell_index")?)
                        .map_err(|_| "cell_index out of range".to_string())?,
                    workload: str_of(o, "workload")?,
                    launch_model: str_of(o, "launch_model")?,
                    scheduler: str_of(o, "scheduler")?,
                    attempts: u32::try_from(u64_of("attempts")?)
                        .map_err(|_| "attempts out of range".to_string())?,
                    error: str_of(o, "error")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let footprints = v
            .get("footprints")
            .and_then(Json::as_arr)
            .ok_or("missing array 'footprints'")?
            .iter()
            .map(|o| {
                let num = |key: &str| -> Result<f64, String> {
                    o.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("missing number field '{key}'"))
                };
                Ok(FootprintRow {
                    workload: str_of(o, "workload")?,
                    parent_child: num("parent_child")?,
                    child_sibling: num("child_sibling")?,
                    parent_parent: num("parent_parent")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SweepDoc { scale, seed, records, failures, footprints })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn run_cells_preserves_input_order_for_any_job_count() {
        let cells: Vec<usize> = (0..40).collect();
        for jobs in [1, 2, 8, 64] {
            let out = run_cells(&cells, jobs, |&i| i * i);
            let values: Vec<usize> = out.into_iter().map(Result::unwrap).collect();
            assert_eq!(values, cells.iter().map(|&i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn a_panicking_cell_is_isolated() {
        let cells: Vec<usize> = (0..10).collect();
        let out = run_cells(&cells, 4, |&i| {
            assert!(i != 5, "cell five exploded");
            i + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("cell five exploded"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn zero_jobs_is_clamped_and_empty_input_is_fine() {
        assert_eq!(run_cells(&[1, 2], 0, |&i: &i32| i).len(), 2);
        assert!(run_cells::<i32, i32, _>(&[], 8, |&i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn parallel_map_reraises_panics() {
        parallel_map(&[1], 1, |_| -> i32 { panic!("boom") });
    }

    #[test]
    fn program_path_flag_values_round_trip() {
        for path in [ProgramPath::Generator, ProgramPath::Dsl] {
            assert_eq!(ProgramPath::parse(path.name()), Some(path));
        }
        assert_eq!(ProgramPath::parse("vm"), None);
        assert_eq!(ProgramPath::default(), ProgramPath::Generator);
    }

    #[test]
    fn both_program_paths_list_the_same_suite() {
        let gen = suite_for_path(Scale::Tiny, 0, ProgramPath::Generator).unwrap();
        let dsl = suite_for_path(Scale::Tiny, 0, ProgramPath::Dsl).unwrap();
        assert_eq!(gen.len(), dsl.len());
        for (g, d) in gen.iter().zip(&dsl) {
            assert_eq!(g.full_name(), d.full_name());
        }
    }

    #[test]
    fn dsl_path_records_match_generator_path_records() {
        // One workload's full model × scheduler sub-matrix, run through
        // both program paths, must produce identical run records —
        // program byte-identity implies simulation-statistic identity.
        let mut cfg = GpuConfig::kepler_k20c();
        cfg.profile_locality = true;
        let pick = |path| -> Vec<Arc<dyn Workload>> {
            suite_for_path(Scale::Tiny, 0, path)
                .unwrap()
                .into_iter()
                .filter(|w| w.full_name() == "join-uniform")
                .collect()
        };
        let run = |path| {
            let outcome = run_matrix_cells(&matrix_cells_for(&pick(path)), 2, &cfg);
            assert!(outcome.failures.is_empty(), "{path:?}: {:?}", outcome.failures);
            outcome.records
        };
        let gen = run(ProgramPath::Generator);
        let dsl = run(ProgramPath::Dsl);
        assert_eq!(gen.len(), 8);
        assert_eq!(gen, dsl);
    }
}
