//! Experiment definitions for the LaPerm reproduction.
//!
//! Each function regenerates one table or figure of the paper as a
//! formatted text report (see DESIGN.md for the experiment index). The
//! `repro` binary exposes them as subcommands; the `hotloop` binary
//! measures wall-clock simulation throughput (see [`hotloop`]).

pub mod experiments;
pub mod fig4;
pub mod hotloop;

pub use experiments::{
    ablate, fig2, fig7, fig8, fig9, generality, latency_sweep, overhead, run_matrix, sweep_cache,
    table1, table2, timeline, variance, MatrixRecords,
};
pub use fig4::figure4;
