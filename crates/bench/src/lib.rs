//! Experiment definitions for the LaPerm reproduction.
//!
//! Each function regenerates one table or figure of the paper as a
//! formatted text report (see DESIGN.md for the experiment index). The
//! `repro` binary exposes them as subcommands; the `hotloop` binary
//! measures wall-clock simulation throughput (see [`hotloop`]); the
//! `sweepbench` binary measures sweep scaling over `--jobs` (see
//! [`sweep`]).
//!
//! * [`sweep`] — work-queue executor fanning independent simulations
//!   over cores, plus the `repro.json` document it emits.
//! * [`resilience`] — crash-safe sweep execution: content-addressed cell
//!   cache over an append-only journal, per-cell supervision
//!   (deadline/retry/backoff), and harness-level fault injection.
//! * [`shapes`] — EXPERIMENTS.md's qualitative claims as machine-checked
//!   assertions over `repro.json` (the `repro check` reproduction gate).

// Library code must not panic on fallible lookups; tests opt back
// in locally.
#![deny(clippy::unwrap_used)]

pub mod experiments;
pub mod fig4;
pub mod hotloop;
pub mod resilience;
pub mod shapes;
pub mod sweep;

pub use experiments::{
    ablate, fig2, fig7, fig8, fig9, full_report, generality, latency_attribution, latency_report,
    latency_sweep, locality, overhead, profile, run_matrix, run_matrix_with_jobs, saturation,
    sweep_cache, table1, table2, timeline, variance, MatrixRecords,
};
pub use fig4::figure4;
pub use resilience::{
    cell_key, cell_key_with_fingerprint, run_matrix_cells_resilient, CellCache, CellFailure,
    FailureCause, HarnessFault, HarnessFaultPlan, Resilience, ResilienceReport, CODE_FINGERPRINT,
};
pub use shapes::{
    check_document, evaluate_shapes, render_check_report, render_shape_report, CheckVerdict,
    ShapeOutcome,
};
pub use sweep::{
    default_jobs, parallel_map, run_cells, suite_for_path, ProgramPath, SweepDoc, SweepFailure,
    SweepOutcome,
};
