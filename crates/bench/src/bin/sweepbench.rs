//! Sweep-scaling benchmark; writes `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p laperm-bench --bin sweepbench -- \
//!     [--scale tiny|ci|small|paper] [--jobs N,M,...] [--out FILE]
//! ```
//!
//! Times the full evaluation matrix (the `repro all` sweep) at each
//! requested worker count and records wall-clock seconds plus the
//! speedup of every job count over `--jobs 1`. `host_cpus` is recorded
//! alongside: speedups are bounded by the physical cores of the machine
//! that produced the file, so a single-core CI runner legitimately
//! reports ~1x while an 8-core workstation shows the parallel win.
//! Rows whose worker count exceeds `host_cpus` additionally carry
//! `"core_bound": true` — their speedup measures oversubscription, not
//! the sweep's scalability, and readers (including the CI gate) must
//! annotate rather than fail on them (`--jobs 8` at 0.91x on a 1-cpu
//! host is the host's fault, not a scaling regression).

use std::time::Instant;

use gpu_sim::config::GpuConfig;
use laperm_bench::sweep::run_matrix_jobs;
use workloads::Scale;

fn main() {
    let mut out_path = String::from("BENCH_sweep.json");
    let mut scale = Scale::Paper;
    let mut jobs_list: Vec<usize> = vec![1, 8];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("ci") => Scale::Ci,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => panic!("--scale expects tiny|ci|small|paper, got {other:?}"),
                }
            }
            "--jobs" => {
                let list = args.next().expect("--jobs needs a comma-separated list");
                jobs_list = list
                    .split(',')
                    .map(|n| n.parse().unwrap_or_else(|_| panic!("bad job count {n}")))
                    .collect();
                assert!(!jobs_list.is_empty(), "--jobs list is empty");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let cfg = GpuConfig::kepler_k20c();
    let host_cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let mut rows = Vec::new();
    let mut serial_secs: Option<f64> = None;
    for &jobs in &jobs_list {
        let start = Instant::now();
        let outcome = run_matrix_jobs(scale, 0, jobs, &cfg);
        let wall = start.elapsed().as_secs_f64();
        assert!(outcome.failures.is_empty(), "sweep failures: {:?}", outcome.failures);
        let runs = outcome.records.len();
        if jobs == 1 {
            serial_secs = Some(wall);
        }
        let note = if jobs > host_cpus { "  (core-bound: jobs exceed host cpus)" } else { "" };
        eprintln!("jobs {jobs:>2}: {runs} runs in {wall:.2}s{note}");
        rows.push((jobs, runs, wall));
    }

    // Final human summary: one row per job count with the speedup and
    // an explicit core-bound marker, so a scan of the tail of the log
    // answers "did it scale, and was the host even big enough to tell".
    eprintln!("\nsweep scaling summary (host_cpus {host_cpus})");
    for (jobs, runs, wall) in &rows {
        let speedup = match serial_secs {
            Some(s) if *wall > 0.0 => format!("{:.2}x", s / wall),
            _ => "-".to_string(),
        };
        let core_bound = if *jobs > host_cpus { "yes" } else { "no" };
        eprintln!(
            "  jobs {jobs:>2}  runs {runs:>3}  wall {wall:>8.2}s  speedup {speedup:>6}  \
             core_bound {core_bound}"
        );
    }

    // Machine-readable notes mirror the core-bound markers at the top
    // level, so readers of BENCH_sweep.json see the caveat without
    // scanning per-row flags.
    let notes: Vec<String> = rows
        .iter()
        .filter(|(jobs, _, _)| *jobs > host_cpus)
        .map(|(jobs, _, _)| {
            format!(
                "jobs {jobs} exceeds host_cpus {host_cpus}: \
                 speedup measures oversubscription, not sweep scalability"
            )
        })
        .collect();

    let mut out = String::from("{\n  \"benchmark\": \"sweep\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"notes\": [");
    for (i, n) in notes.iter().enumerate() {
        out.push_str(&format!("{}\"{n}\"", if i == 0 { "" } else { ", " }));
    }
    out.push_str("],\n");
    out.push_str("  \"results\": [\n");
    for (i, (jobs, runs, wall)) in rows.iter().enumerate() {
        let speedup = match serial_secs {
            Some(s) if *wall > 0.0 => format!(", \"speedup_vs_jobs1\": {:.2}", s / wall),
            _ => String::new(),
        };
        let core_bound = if *jobs > host_cpus { ", \"core_bound\": true" } else { "" };
        out.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"runs\": {runs}, \"wall_secs\": \
             {wall:.3}{speedup}{core_bound}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
