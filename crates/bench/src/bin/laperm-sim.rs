//! Single-run simulator CLI: pick a workload, launch model, scheduler,
//! and hardware knobs, and get a full run report.
//!
//! ```text
//! laperm-sim [options]
//!   --workload <name>      suite workload (default bfs-citation); "list" to enumerate
//!   --scheduler <name>     rr | tb-pri | smx-bind | adaptive-bind | random (default adaptive-bind)
//!   --model <name>         cdp | dtbl (default dtbl)
//!   --scale <name>         tiny | small | paper (default small)
//!   --seed <n>             input seed (default 0)
//!   --smxs <n>             override SMX count
//!   --l1-kb <n>            override L1 size per SMX
//!   --l2-kb <n>            override total L2 size
//!   --launch-latency <n>   override base launch latency in cycles
//!   --trace                print the first scheduling events
//! ```

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::tb_sched::{RandomScheduler, RoundRobinScheduler, TbScheduler};
use gpu_sim::trace::{render, VecSink};
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use workloads::{suite_seeded, Scale, SharedSource};

struct Options {
    workload: String,
    scheduler: String,
    model: LaunchModelKind,
    scale: Scale,
    seed: u64,
    smxs: Option<u16>,
    l1_kb: Option<u32>,
    l2_kb: Option<u32>,
    launch_latency: Option<u32>,
    trace: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let parse_num = |flag: &str| -> Option<u64> {
        value(flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    Options {
        workload: value("--workload").unwrap_or_else(|| "bfs-citation".into()),
        scheduler: value("--scheduler").unwrap_or_else(|| "adaptive-bind".into()),
        model: match value("--model").as_deref() {
            Some("cdp") => LaunchModelKind::Cdp,
            Some("dtbl") | None => LaunchModelKind::Dtbl,
            Some(other) => {
                eprintln!("unknown launch model {other}");
                std::process::exit(2);
            }
        },
        scale: match value("--scale").as_deref() {
            Some("tiny") => Scale::Tiny,
            Some("small") | None => Scale::Small,
            Some("paper") => Scale::Paper,
            Some(other) => {
                eprintln!("unknown scale {other}");
                std::process::exit(2);
            }
        },
        seed: parse_num("--seed").unwrap_or(0),
        smxs: parse_num("--smxs").map(|n| n as u16),
        l1_kb: parse_num("--l1-kb").map(|n| n as u32),
        l2_kb: parse_num("--l2-kb").map(|n| n as u32),
        launch_latency: parse_num("--launch-latency").map(|n| n as u32),
        trace: args.iter().any(|a| a == "--trace"),
    }
}

fn build_scheduler(name: &str, cfg: &GpuConfig) -> Box<dyn TbScheduler> {
    let laperm_cfg = LaPermConfig::for_gpu(cfg);
    match name {
        "rr" => Box::new(RoundRobinScheduler::new()),
        "random" => Box::new(RandomScheduler::new(1)),
        "tb-pri" => Box::new(LaPermScheduler::new(LaPermPolicy::TbPri, laperm_cfg)),
        "smx-bind" => Box::new(LaPermScheduler::new(LaPermPolicy::SmxBind, laperm_cfg)),
        "adaptive-bind" => Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, laperm_cfg)),
        other => {
            eprintln!("unknown scheduler {other} (rr, tb-pri, smx-bind, adaptive-bind, random)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    let all = suite_seeded(opts.scale, opts.seed);
    if opts.workload == "list" {
        for w in &all {
            println!("{}", w.full_name());
        }
        return;
    }
    let Some(workload) = all.iter().find(|w| w.full_name() == opts.workload) else {
        eprintln!("unknown workload {}; try --workload list", opts.workload);
        std::process::exit(2);
    };

    let mut cfg = GpuConfig::kepler_k20c();
    if let Some(n) = opts.smxs {
        cfg.num_smxs = n;
    }
    if let Some(kb) = opts.l1_kb {
        cfg.l1_bytes = kb * 1024;
    }
    if let Some(kb) = opts.l2_kb {
        cfg.l2_bytes = kb * 1024;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let latency = match opts.launch_latency {
        Some(base) => LaunchLatency::uniform(base),
        None => LaunchLatency::default_for(opts.model),
    };
    let sink = VecSink::new();
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
        .with_scheduler(build_scheduler(&opts.scheduler, &cfg))
        .with_launch_model(opts.model.build(latency));
    if opts.trace {
        sim = sim.with_trace(Box::new(sink.clone()));
    }
    for hk in workload.host_kernels() {
        if let Err(e) = sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req) {
            eprintln!("launch failed: {e}");
            std::process::exit(1);
        }
    }
    let stats = match sim.run_to_completion() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{} | {} | {} | {} SMXs | seed {}",
        workload.full_name(),
        opts.model,
        stats.scheduler,
        cfg.num_smxs,
        opts.seed
    );
    print!("{}", stats.summary());
    println!("\nper-kernel-kind breakdown:");
    for (kind, count, mean_resident) in stats.per_kind_summary() {
        println!(
            "  {:<16} {:>6} TBs, mean resident {:.0} cycles",
            workload.kind_name(kind),
            count,
            mean_resident
        );
    }
    if opts.trace {
        let records = sink.records();
        println!("\nfirst scheduling events:");
        print!("{}", render(&records[..records.len().min(30)]));
    }
}
