//! Regenerates the LaPerm paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|ci|small|paper] [--jobs N] [--json FILE]
//!                    [--engine event|cycle-stepped] [--programs generator|dsl]
//!                    [--cache-dir DIR] [--retries N] [--cell-deadline CYCLES]
//!                    [--retry-backoff-ms MS]
//! repro check [--json FILE]
//! repro dsl FILE.dsl [--jobs N]
//!
//! experiments:
//!   table1    GPU configuration (Table I)
//!   table2    benchmark inventory (Table II)
//!   fig2      shared footprint ratios (Figure 2)
//!   fig4      scheduling walk-through placements (Figure 4)
//!   fig7      L2 hit rates (Figure 7)     — runs the full matrix
//!   fig8      L1 hit rates (Figure 8)     — runs the full matrix
//!   fig9      normalized IPC (Figure 9)   — runs the full matrix
//!   locality  cache-hit provenance by lineage class — runs the full matrix
//!   latency   launch-latency sensitivity (Section IV-D), then TB
//!             lifecycle attribution and the launch-DAG critical path
//!             over a latency-profiled rerun of the matrix
//!   timeline  windowed IPC/L1 over one run, RR vs Adaptive-Bind
//!   variance  headline gain over several input seeds (mean ± std)
//!   csv       full run matrix as CSV on stdout (for plotting)
//!   cache     L1/L2 capacity sensitivity (paper's future work)
//!   saturation IPC vs DTBL aggregation-table size per scheduler
//!   generality Kepler vs Maxwell-like architecture
//!   overhead  queue hardware overheads (Section IV-E)
//!   ablate    design-choice ablations
//!   all       everything above; also writes the repro.json artifact
//!   profile   rerun the matrix with engine introspection on; prints the
//!             wake-source decomposition and writes a profiled document
//!             (default repro_profile.json, never clobbering repro.json)
//!   check     evaluate the shape assertions against repro.json and
//!             exit nonzero on any violation (the CI reproduction gate);
//!             point it at repro_profile.json to bind the engine shapes
//!   dsl       compile a workload-DSL file and run it under every
//!             launch model × scheduler on the Table I machine
//! ```
//!
//! `--jobs N` fans independent simulations over N worker threads
//! (default: all cores). Output is bit-identical for any N; only the
//! stderr progress interleaving differs.
//!
//! `--engine` selects the simulation engine for `all` (default:
//! event). The CI `engine-equivalence` job runs `all` once per engine
//! and diffs the two `repro.json` documents byte-for-byte.
//!
//! `--programs` selects the program-generation path for `all` (default:
//! generator). `dsl` serves every suite workload from its DSL port
//! compiled to bytecode; programs are byte-identical across paths, so
//! the CI `dsl-differential` job runs `all` once per path and diffs the
//! two `repro.json` documents byte-for-byte.
//!
//! Resilience flags for `all` (see docs/ARCHITECTURE.md, "Resilient
//! sweeps"): `--cache-dir DIR` persists every completed cell to a
//! checksummed journal and resumes from it (a crashed sweep recomputes
//! only what it lost; corrupt or torn records are detected and
//! recomputed, never served); `--retries N` retries a failed cell with
//! deterministic exponential backoff (`--retry-backoff-ms`, default
//! 100) before recording a permanent failure; `--cell-deadline CYCLES`
//! caps each cell's forward-progress watchdog window. A partial sweep
//! renders a `DEGRADED (k/N cells failed)` banner and failures table
//! instead of aborting. Without `--cache-dir`, output is byte-identical
//! to the resilience-free executor. The undocumented
//! `--kill-after-cells N` hard-kills the process after N cells are
//! committed to the cache — the CI `sweep-resilience` job's crash
//! injection.
//!
//! `repro check` exit codes: 0 every assertion passed; 1 assertion
//! violation(s) on a healthy document; 2 degraded input (the document
//! carries failed cells — assertions ran over survivors only); 3 the
//! document is unreadable, corrupt, or schema-incompatible.

#![deny(clippy::unwrap_used)]

use std::sync::Arc;

use gpu_sim::config::{EngineMode, GpuConfig};
use laperm_bench::sweep::{matrix_cells_for, run_matrix_cells};
use laperm_bench::{
    ablate, check_document, default_jobs, fig2, fig7, fig8, fig9, figure4, full_report, generality,
    latency_report, locality, overhead, profile, render_check_report, run_matrix_with_jobs,
    saturation, sweep_cache, table1, table2, timeline, variance, CheckVerdict, MatrixRecords,
    ProgramPath, Resilience, SweepDoc,
};
use wdsl::{CompiledWorkload, ExecMode};
use workloads::{Scale, Workload};

struct Args {
    experiment: String,
    /// Positional operand after the experiment (`repro dsl FILE`).
    operand: Option<String>,
    scale: Scale,
    jobs: usize,
    json_path: Option<String>,
    engine: EngineMode,
    programs: ProgramPath,
    resilience: Resilience,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all").to_string();
    let operand = args.get(1).filter(|a| !a.starts_with('-')).cloned();
    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let scale = match value_of("--scale") {
        Some("tiny") => Scale::Tiny,
        Some("ci") => Scale::Ci,
        Some("small") => Scale::Small,
        Some("paper") | None => Scale::Paper,
        Some(other) => {
            eprintln!("unknown scale {other}; using paper");
            Scale::Paper
        }
    };
    let jobs = match value_of("--jobs") {
        Some(n) => n.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects a positive integer, got {n}");
            std::process::exit(2);
        }),
        None => default_jobs(),
    };
    let json_path = value_of("--json").map(String::from);
    let engine = match value_of("--engine") {
        Some("cycle-stepped") => EngineMode::CycleStepped,
        Some("event") | None => EngineMode::Event,
        Some(other) => {
            eprintln!("unknown engine {other}; choose event or cycle-stepped");
            std::process::exit(2);
        }
    };
    let programs = match value_of("--programs") {
        None => ProgramPath::Generator,
        Some(s) => ProgramPath::parse(s).unwrap_or_else(|| {
            eprintln!("unknown program path {s}; choose generator or dsl");
            std::process::exit(2);
        }),
    };
    let int_flag = |flag: &str| -> Option<u64> {
        value_of(flag).map(|n| {
            n.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got {n}");
                std::process::exit(2);
            })
        })
    };
    let resilience = Resilience {
        cache_dir: value_of("--cache-dir").map(std::path::PathBuf::from),
        retries: int_flag("--retries").map(|n| n as u32).unwrap_or(0),
        backoff_ms: int_flag("--retry-backoff-ms").unwrap_or(100),
        cell_deadline: int_flag("--cell-deadline"),
        kill_after_cells: int_flag("--kill-after-cells"),
        faults: None,
        sim_fault_seed: None,
    };
    Args { experiment, operand, scale, jobs, json_path, engine, programs, resilience }
}

/// `repro all`: the full sweep. Writes `repro.json`, prints the text
/// report, and exits nonzero if any matrix cell failed.
fn run_all(args: &Args) {
    let path = args.json_path.as_deref().unwrap_or("repro.json");
    let (doc, report) = SweepDoc::build_resilient(
        args.scale,
        0,
        args.jobs,
        args.engine,
        args.programs,
        &args.resilience,
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    std::fs::write(path, doc.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
    if args.resilience.cache_dir.is_some() {
        if let Some(damage) = &report.journal_damage {
            eprintln!("cell journal damage repaired: {damage}; dropped records were recomputed");
        }
        eprintln!(
            "cell cache: {} hits, {} misses, {} committed this run",
            report.cache_hits, report.cache_misses, report.committed
        );
    }
    let failed = !doc.failures.is_empty();
    for f in &doc.failures {
        eprintln!("FAILED {}/{}/{}: {}", f.workload, f.launch_model, f.scheduler, f.error);
    }
    // A partial sweep degrades instead of aborting: the banner and
    // failures table lead the report, the surviving cells still render.
    if let Some(banner) = doc.degraded_banner() {
        print!("{banner}");
    }
    let m = MatrixRecords::from_records(doc.records);
    print!("{}", full_report(args.scale, args.jobs, &m));
    if failed {
        std::process::exit(1);
    }
}

/// `repro profile`: reruns the evaluation matrix with engine
/// introspection on and prints the wake-source decomposition. The
/// profiled document defaults to `repro_profile.json` so it never
/// clobbers the `repro all` artifact (whose byte-identity the
/// `engine-equivalence` CI job depends on); run `repro check --json
/// repro_profile.json` afterwards to bind the engine shape assertions.
fn run_profile(args: &Args) {
    let path = args.json_path.as_deref().unwrap_or("repro_profile.json");
    let doc = SweepDoc::build_profiled(args.scale, 0, args.jobs, args.engine);
    std::fs::write(path, doc.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
    let failed = !doc.failures.is_empty();
    for f in &doc.failures {
        eprintln!("FAILED {}/{}/{}: {}", f.workload, f.launch_model, f.scheduler, f.error);
    }
    let m = MatrixRecords::from_records(doc.records);
    print!("{}", profile(&m));
    if failed {
        std::process::exit(1);
    }
}

/// `repro latency`: the Section IV-D launch-latency sensitivity sweep
/// followed by the TB lifecycle attribution and critical-path tables,
/// which rerun the matrix with latency profiling on. Nothing is written
/// to disk — the profiled `repro.json` artifact comes from `repro
/// profile`, whose document now also carries the latency objects.
fn run_latency(args: &Args) {
    let doc = SweepDoc::build_profiled(args.scale, 0, args.jobs, args.engine);
    let failed = !doc.failures.is_empty();
    for f in &doc.failures {
        eprintln!("FAILED {}/{}/{}: {}", f.workload, f.launch_model, f.scheduler, f.error);
    }
    let m = MatrixRecords::from_records(doc.records);
    print!("{}", latency_report(args.scale, args.jobs, &m));
    if failed {
        std::process::exit(1);
    }
}

/// `repro check`: the reproduction gate. Reads `repro.json`, evaluates
/// the shape assertions, and exits by case: 0 all passed, 1 assertion
/// violation, 2 degraded input (failed cells; survivors evaluated), 3
/// unreadable or corrupt document. Each nonzero case says which it is.
fn run_check(args: &Args) {
    let path = args.json_path.as_deref().unwrap_or("repro.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("I/O error: cannot read {path} (run `repro all` first): {e}");
        std::process::exit(3);
    });
    let doc = SweepDoc::from_json(&text).unwrap_or_else(|e| {
        eprintln!("corrupt or incompatible sweep document {path}: {e}");
        std::process::exit(3);
    });
    let (outcomes, verdict) = check_document(&doc);
    print!("{}", render_check_report(&doc, &outcomes));
    match verdict {
        CheckVerdict::Pass => {}
        CheckVerdict::Violation => {
            eprintln!("assertion violation(s) on a complete document");
            std::process::exit(1);
        }
        CheckVerdict::Degraded => {
            eprintln!(
                "degraded input: {}/{} cells failed; assertions evaluated over survivors only",
                doc.failures.len(),
                doc.total_cells()
            );
            std::process::exit(2);
        }
    }
}

/// `repro dsl FILE.dsl`: compile a workload-DSL file end to end and run
/// it under every launch model × scheduler on the Table I machine. This
/// is the quickstart path for a hand-written `.dsl` program: the file
/// becomes a full workload (host kernels included) without any Rust.
fn run_dsl(args: &Args) {
    let Some(file) = args.operand.as_deref() else {
        eprintln!("usage: repro dsl FILE.dsl [--jobs N]");
        std::process::exit(2);
    };
    let src = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(2);
    });
    let compiled = CompiledWorkload::from_source(&src, ExecMode::Vm).unwrap_or_else(|e| {
        eprintln!("{file}: [{}] {e}", e.stage());
        std::process::exit(2);
    });
    let workload: Arc<dyn Workload> = Arc::new(compiled);
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.profile_locality = true;
    let cells = matrix_cells_for(std::slice::from_ref(&workload));
    let outcome = run_matrix_cells(&cells, args.jobs, &cfg);
    println!("{} on kepler_k20c (compiled DSL, bytecode VM):", workload.full_name());
    println!(
        "{:<6} {:<14} {:>10} {:>6} {:>6} {:>6} {:>10}",
        "model", "scheduler", "cycles", "IPC", "L1%", "L2%", "childwait"
    );
    for r in &outcome.records {
        println!(
            "{:<6} {:<14} {:>10} {:>6.1} {:>6.1} {:>6.1} {:>10.1}",
            r.launch_model,
            r.scheduler,
            r.cycles,
            r.ipc,
            r.l1_hit_rate * 100.0,
            r.l2_hit_rate * 100.0,
            r.mean_child_wait,
        );
    }
    for f in &outcome.failures {
        eprintln!("FAILED {}/{}/{}: {}", f.workload, f.launch_model, f.scheduler, f.error);
    }
    if !outcome.failures.is_empty() {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();

    match args.experiment.as_str() {
        "table1" => println!("{}", table1()),
        "table2" => println!("{}", table2(args.scale)),
        "fig2" => println!("{}", fig2(args.scale, args.jobs)),
        "fig4" => println!("{}", figure4()),
        "fig7" | "fig8" | "fig9" | "locality" => {
            let m = run_matrix_with_jobs(args.scale, args.jobs);
            let report = match args.experiment.as_str() {
                "fig7" => fig7(&m),
                "fig8" => fig8(&m),
                "fig9" => fig9(&m),
                _ => locality(&m),
            };
            println!("{report}");
        }
        "latency" => run_latency(&args),
        "timeline" => println!("{}", timeline(args.scale, args.jobs)),
        "variance" => println!("{}", variance(args.scale, args.jobs)),
        "csv" => {
            let m = run_matrix_with_jobs(args.scale, args.jobs);
            print!("{}", sim_metrics::export::runs_to_csv(m.records()));
        }
        "cache" => println!("{}", sweep_cache(args.scale, args.jobs)),
        "saturation" => println!("{}", saturation(args.scale, args.jobs)),
        "generality" => println!("{}", generality(args.scale, args.jobs)),
        "overhead" => println!("{}", overhead(args.scale, args.jobs)),
        "ablate" => println!("{}", ablate(args.scale, args.jobs)),
        "all" => run_all(&args),
        "profile" => run_profile(&args),
        "check" => run_check(&args),
        "dsl" => run_dsl(&args),
        other => {
            eprintln!("unknown experiment {other}");
            eprintln!(
                "choose from: table1 table2 fig2 fig4 fig7 fig8 fig9 locality latency \
                 timeline variance csv cache saturation generality overhead ablate all \
                 profile check dsl"
            );
            std::process::exit(2);
        }
    }
}
