//! Regenerates the LaPerm paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper]
//!
//! experiments:
//!   table1    GPU configuration (Table I)
//!   table2    benchmark inventory (Table II)
//!   fig2      shared footprint ratios (Figure 2)
//!   fig4      scheduling walk-through placements (Figure 4)
//!   fig7      L2 hit rates (Figure 7)     — runs the full matrix
//!   fig8      L1 hit rates (Figure 8)     — runs the full matrix
//!   fig9      normalized IPC (Figure 9)   — runs the full matrix
//!   latency   launch-latency sensitivity (Section IV-D)
//!   timeline  windowed IPC/L1 over one run, RR vs Adaptive-Bind
//!   variance  headline gain over several input seeds (mean ± std)
//!   csv       full run matrix as CSV on stdout (for plotting)
//!   cache     L1/L2 capacity sensitivity (paper's future work)
//!   generality Kepler vs Maxwell-like architecture
//!   overhead  queue hardware overheads (Section IV-E)
//!   ablate    design-choice ablations
//!   all       everything above
//! ```

use laperm_bench::{
    ablate, fig2, fig7, fig8, fig9, figure4, generality, latency_sweep, overhead, run_matrix,
    sweep_cache, table1, table2, timeline, variance,
};
use workloads::Scale;

fn parse_scale(args: &[String]) -> Scale {
    match args.iter().position(|a| a == "--scale").and_then(|i| args.get(i + 1)).map(String::as_str)
    {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("paper") | None => Scale::Paper,
        Some(other) => {
            eprintln!("unknown scale {other}; using paper");
            Scale::Paper
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_scale(&args);

    let needs_matrix = matches!(experiment, "fig7" | "fig8" | "fig9" | "all");
    let matrix = needs_matrix.then(|| run_matrix(scale));

    match experiment {
        "table1" => println!("{}", table1()),
        "table2" => println!("{}", table2(scale)),
        "fig2" => println!("{}", fig2(scale)),
        "fig4" => println!("{}", figure4()),
        "fig7" => println!("{}", fig7(matrix.as_ref().unwrap())),
        "fig8" => println!("{}", fig8(matrix.as_ref().unwrap())),
        "fig9" => println!("{}", fig9(matrix.as_ref().unwrap())),
        "latency" => println!("{}", latency_sweep(scale)),
        "timeline" => println!("{}", timeline(scale)),
        "variance" => println!("{}", variance(scale)),
        "csv" => {
            let m = run_matrix(scale);
            print!("{}", sim_metrics::export::runs_to_csv(m.records()));
        }
        "cache" => println!("{}", sweep_cache(scale)),
        "generality" => println!("{}", generality(scale)),
        "overhead" => println!("{}", overhead(scale)),
        "ablate" => println!("{}", ablate(scale)),
        "all" => {
            let m = matrix.as_ref().unwrap();
            println!("{}\n", table1());
            println!("{}\n", table2(scale));
            println!("{}\n", fig2(scale));
            println!("{}\n", figure4());
            println!("{}\n", fig7(m));
            println!("{}\n", fig8(m));
            println!("{}\n", fig9(m));
            println!("{}\n", latency_sweep(scale));
            println!("{}\n", timeline(scale));
            println!("{}\n", variance(scale));
            println!("{}\n", sweep_cache(scale));
            println!("{}\n", generality(scale));
            println!("{}\n", overhead(scale));
            println!("{}\n", ablate(scale));
        }
        other => {
            eprintln!("unknown experiment {other}");
            eprintln!("choose from: table1 table2 fig2 fig4 fig7 fig8 fig9 latency timeline variance cache generality overhead ablate all");
            std::process::exit(2);
        }
    }
}
