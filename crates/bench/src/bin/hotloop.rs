//! Hot-loop throughput benchmark; writes `BENCH_hotloop.json`.
//!
//! ```text
//! cargo run --release -p laperm-bench --bin hotloop -- [--out FILE] [--baseline FILE]
//! ```
//!
//! `--baseline FILE` reads a previous `BENCH_hotloop.json` and records
//! per-case `baseline_cycles_per_sec` and `speedup` fields in the output.

use laperm_bench::hotloop::{parse_baseline, render_json, run_hotloop};

fn main() {
    let mut out_path = String::from("BENCH_hotloop.json");
    let mut baseline: Vec<(String, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => {
                let path = args.next().expect("--baseline needs a path");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
                baseline = parse_baseline(&text);
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let results = run_hotloop();
    for r in &results {
        eprintln!(
            "{:28} {:>14.0} cycles/sec  ({} cycles in {:.3}s over {} iters)",
            r.name, r.cycles_per_sec, r.cycles, r.wall_secs, r.iters
        );
    }
    let json = render_json(&results, &baseline);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
