//! Hot-loop throughput benchmark; writes `BENCH_hotloop.json`.
//!
//! ```text
//! cargo run --release -p laperm-bench --bin hotloop -- \
//!     [--out FILE] [--baseline FILE] [--max-regression PCT]
//! ```
//!
//! `--baseline FILE` reads a previous `BENCH_hotloop.json` and records
//! per-case `baseline_cycles_per_sec` and `speedup` fields in the output.
//! `--max-regression PCT` additionally exits nonzero if any case's
//! throughput drops more than PCT percent below its baseline — the CI
//! bench-regression gate. When the baseline's recorded `host_cpus`
//! differs from the current machine's, the two documents came from
//! different host classes and wall-clock numbers are not comparable:
//! misses are annotated in the report but do not fail the gate.

use laperm_bench::hotloop::{
    check_regressions, parse_baseline, parse_host_cpus, render_json, run_hotloop,
};

fn main() {
    let mut out_path = String::from("BENCH_hotloop.json");
    let mut baseline: Vec<(String, f64)> = Vec::new();
    let mut baseline_host_cpus: Option<usize> = None;
    let mut max_regression: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => {
                let path = args.next().expect("--baseline needs a path");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
                baseline = parse_baseline(&text);
                baseline_host_cpus = parse_host_cpus(&text);
            }
            "--max-regression" => {
                let pct = args.next().expect("--max-regression needs a percentage");
                max_regression = Some(pct.parse().unwrap_or_else(|_| {
                    eprintln!("--max-regression expects a percentage, got {pct}");
                    std::process::exit(2);
                }));
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if max_regression.is_some() && baseline.is_empty() {
        eprintln!("--max-regression needs --baseline FILE to compare against");
        std::process::exit(2);
    }

    let host_cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let results = run_hotloop();
    for r in &results {
        eprintln!(
            "{:38} {:>14.0} cycles/sec  ({} cycles in {:.3}s over {} iters)",
            r.name, r.cycles_per_sec, r.cycles, r.wall_secs, r.iters
        );
    }
    let json = render_json(&results, &baseline, host_cpus);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if let Some(pct) = max_regression {
        let hosts = baseline_host_cpus.map(|b| (b, host_cpus));
        let (ok, report) = check_regressions(&results, &baseline, pct, hosts);
        eprint!("{report}");
        if !ok {
            eprintln!(
                "hot-loop throughput regressed more than {pct:.0}% below BENCH baseline; \
                 if the slowdown is intentional, regenerate the baseline with \
                 `cargo run --release -p laperm-bench --bin hotloop` and commit it"
            );
            std::process::exit(1);
        }
        eprintln!("hot-loop throughput within {pct:.0}% of baseline");
    }
}
