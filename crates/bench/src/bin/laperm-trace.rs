//! Perfetto trace exporter CLI: run one (workload × launch model ×
//! scheduler) simulation with full tracing and write a Chrome
//! `trace_event` JSON document loadable in <https://ui.perfetto.dev>.
//!
//! ```text
//! laperm-trace [options]
//!   --workload <name>      suite workload (default bfs-citation); "list" to enumerate
//!   --scheduler <name>     rr | tb-pri | smx-bind | adaptive-bind | random (default adaptive-bind)
//!   --model <name>         cdp | dtbl (default dtbl)
//!   --scale <name>         tiny | small | paper (default small)
//!   --seed <n>             input seed (default 0)
//!   --smxs <n>             override SMX count
//!   --out <path>           output file (default trace.json)
//!   --sample-every <n>     IPC counter sampling window in cycles (default 1000, 0 = off)
//!   --check                validate the document and exit non-zero on violation
//!   --metrics              also print the run's metrics registry
//!   --locality             profile cache-hit provenance; print the per-class reuse summary
//!   --engine-profile       profile the engine; print the two-clock self-profile summary
//!   --latency              profile TB lifecycle latency; print the attribution summary and
//!                          draw the launch-DAG critical path as flow arrows in the trace
//! ```
//!
//! Argument parsing is strict: any token that is not a recognized flag
//! (or a recognized flag's value) is a hard error listing the valid
//! flags and names. A typo'd or `--flag=value`-style argument therefore
//! fails loudly instead of silently running with defaults.
//!
//! A profiler summary whose statistics are missing from the finished
//! run is likewise a hard error, never an empty table: an empty table
//! is indistinguishable from a measured zero.

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::tb_sched::{RandomScheduler, RoundRobinScheduler, TbScheduler};
use gpu_sim::trace::VecSink;
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use sim_metrics::{perfetto_json, registry_for_run, validate_trace};
use workloads::{suite_seeded, Scale, SharedSource};

struct Options {
    workload: String,
    scheduler: String,
    model: LaunchModelKind,
    scale: Scale,
    seed: u64,
    smxs: Option<u16>,
    out: String,
    sample_every: u64,
    check: bool,
    metrics: bool,
    locality: bool,
    engine_profile: bool,
    latency: bool,
}

/// Flags that consume the following token as their value.
const VALUE_FLAGS: [&str; 8] = [
    "--workload",
    "--scheduler",
    "--model",
    "--scale",
    "--seed",
    "--smxs",
    "--out",
    "--sample-every",
];

/// Boolean flags.
const BOOL_FLAGS: [&str; 5] =
    ["--check", "--metrics", "--locality", "--engine-profile", "--latency"];

/// Valid `--scheduler` names (must match [`build_scheduler`]).
const SCHEDULER_NAMES: &str = "rr, tb-pri, smx-bind, adaptive-bind, random";

fn reject_arg(arg: &str) -> ! {
    eprintln!("unknown argument {arg}");
    eprintln!("value flags: {} (each takes the next token)", VALUE_FLAGS.join(" "));
    eprintln!("boolean flags: {}", BOOL_FLAGS.join(" "));
    eprintln!("schedulers: {SCHEDULER_NAMES}; launch models: cdp, dtbl");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Strict pass: every token must be a known flag or the value of the
    // known value-flag just before it. This turns `--scheduler=foo` and
    // misspelled flags into hard errors instead of silent defaults.
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if BOOL_FLAGS.contains(&a) {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            if args.get(i + 1).is_none() {
                eprintln!("{a} expects a value");
                std::process::exit(2);
            }
            i += 2;
        } else {
            reject_arg(a);
        }
    }
    let value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let parse_num = |flag: &str| -> Option<u64> {
        value(flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    Options {
        workload: value("--workload").unwrap_or_else(|| "bfs-citation".into()),
        scheduler: value("--scheduler").unwrap_or_else(|| "adaptive-bind".into()),
        model: match value("--model").as_deref() {
            Some("cdp") => LaunchModelKind::Cdp,
            Some("dtbl") | None => LaunchModelKind::Dtbl,
            Some(other) => {
                eprintln!("unknown launch model {other} (cdp, dtbl)");
                std::process::exit(2);
            }
        },
        scale: match value("--scale").as_deref() {
            Some("tiny") => Scale::Tiny,
            Some("small") | None => Scale::Small,
            Some("paper") => Scale::Paper,
            Some(other) => {
                eprintln!("unknown scale {other} (tiny, small, paper)");
                std::process::exit(2);
            }
        },
        seed: parse_num("--seed").unwrap_or(0),
        smxs: parse_num("--smxs").map(|n| n as u16),
        out: value("--out").unwrap_or_else(|| "trace.json".into()),
        sample_every: parse_num("--sample-every").unwrap_or(1000),
        check: args.iter().any(|a| a == "--check"),
        metrics: args.iter().any(|a| a == "--metrics"),
        locality: args.iter().any(|a| a == "--locality"),
        engine_profile: args.iter().any(|a| a == "--engine-profile"),
        latency: args.iter().any(|a| a == "--latency"),
    }
}

fn build_scheduler(name: &str, cfg: &GpuConfig) -> Box<dyn TbScheduler> {
    let laperm_cfg = LaPermConfig::for_gpu(cfg);
    match name {
        "rr" => Box::new(RoundRobinScheduler::new()),
        "random" => Box::new(RandomScheduler::new(1)),
        "tb-pri" => Box::new(LaPermScheduler::new(LaPermPolicy::TbPri, laperm_cfg)),
        "smx-bind" => Box::new(LaPermScheduler::new(LaPermPolicy::SmxBind, laperm_cfg)),
        "adaptive-bind" => Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, laperm_cfg)),
        other => {
            eprintln!("unknown scheduler {other} ({SCHEDULER_NAMES})");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    let all = suite_seeded(opts.scale, opts.seed);
    if opts.workload == "list" {
        for w in &all {
            println!("{}", w.full_name());
        }
        return;
    }
    let Some(workload) = all.iter().find(|w| w.full_name() == opts.workload) else {
        eprintln!("unknown workload {}; try --workload list", opts.workload);
        std::process::exit(2);
    };

    let mut cfg = GpuConfig::kepler_k20c();
    cfg.profile_locality = opts.locality;
    cfg.profile_engine = opts.engine_profile;
    cfg.profile_latency = opts.latency;
    if let Some(n) = opts.smxs {
        cfg.num_smxs = n;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let sink = VecSink::new();
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
        .with_scheduler(build_scheduler(&opts.scheduler, &cfg))
        .with_launch_model(opts.model.build(LaunchLatency::default_for(opts.model)))
        .with_trace(Box::new(sink.clone()));
    for hk in workload.host_kernels() {
        if let Err(e) = sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req) {
            eprintln!("launch failed: {e}");
            std::process::exit(1);
        }
    }

    // Step manually so the machine can be sampled for the IPC counter
    // track. Fast-forward stays on; a jump just lands past the next
    // sampling boundary.
    let mut samples = Vec::new();
    if opts.sample_every > 0 {
        samples.push(sim.sample());
    }
    let mut next_sample = opts.sample_every;
    while !sim.is_done() {
        if let Err(e) = sim.step() {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
        if opts.sample_every > 0 && sim.cycle() >= next_sample {
            samples.push(sim.sample());
            next_sample = sim.cycle() + opts.sample_every;
        }
        if sim.cycle() > cfg.max_cycles {
            eprintln!("simulation exceeded {} cycles", cfg.max_cycles);
            std::process::exit(1);
        }
    }
    let stats = sim.stats();
    let records = sink.records();

    let json = perfetto_json(&records, &stats, &samples, cfg.num_smxs);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }

    println!(
        "{} | {} | {} | {} SMXs | seed {}",
        workload.full_name(),
        opts.model,
        stats.scheduler,
        cfg.num_smxs,
        opts.seed
    );
    println!(
        "{} cycles, {} trace events, {} TB records -> {} ({} bytes)",
        stats.cycles,
        records.len(),
        stats.tb_records.len(),
        opts.out,
        json.len()
    );

    match validate_trace(&json) {
        Ok(check) => println!(
            "validated: {} events, {} SMX tracks, {} spans, {} counter samples \
             ({} provenance), {} instants, {} critical-path flows",
            check.events,
            check.smx_tracks,
            check.spans,
            check.counters,
            check.prov_counters,
            check.instants,
            check.flows
        ),
        Err(e) => {
            eprintln!("trace validation failed: {e}");
            if opts.check {
                std::process::exit(1);
            }
        }
    }

    if opts.metrics {
        let registry = registry_for_run(&stats, &records);
        print!("\n{}", registry.render());
    }

    if opts.locality {
        match locality_summary(&stats) {
            Some(s) => print!("\n{s}"),
            None => missing_profile("--locality", "locality"),
        }
    }

    if opts.engine_profile {
        match engine_summary(&stats) {
            Some(s) => print!("\n{s}"),
            None => missing_profile("--engine-profile", "engine"),
        }
    }

    if opts.latency {
        match latency_summary(&stats) {
            Some(s) => print!("\n{s}"),
            None => missing_profile("--latency", "latency"),
        }
    }
}

/// A profiler summary was requested but the finished run carries no
/// such statistics. Hard-error instead of printing an empty table: an
/// empty table reads as a measured zero, and profiling cannot be
/// recovered after the run — it must be enabled on the simulation
/// config before it executes.
fn missing_profile(flag: &str, what: &str) -> ! {
    eprintln!(
        "{flag} was given but the run produced no {what} statistics; \
         the simulation config did not enable the {what} profiler. \
         Rerun with {flag} on a build whose config honors it \
         (profiling cannot be reconstructed from a finished run)."
    );
    std::process::exit(1);
}

/// Renders the two-clock engine self-profile: the simulated clock's
/// wake-source decomposition and loop-shape histograms, then the host
/// clock's sampled per-component wall time. `None` when the run did
/// not profile the engine (the caller hard-errors).
fn engine_summary(stats: &gpu_sim::stats::SimStats) -> Option<String> {
    use gpu_sim::stats::{WakeSource, ENGINE_HOST_COMPONENTS};
    use sim_metrics::report::Table;
    let eng = stats.engine.as_ref()?;
    let mut t = Table::new(vec!["wake source", "iterations", "share"]);
    let total = eng.wake_total().max(1);
    for src in WakeSource::ALL {
        let c = eng.wake_count(src);
        t.row(vec![
            src.name().to_string(),
            c.to_string(),
            format!("{:.1}%", 100.0 * c as f64 / total as f64),
        ]);
    }
    let mut out = format!(
        "engine self-profile\n{}\
         loop iterations: {} over {} cycles ({:.3} iters/cycle)\n\
         fast-forward jumps: {} (mean {:.1} cycles, max {})\n\
         event-heap depth: mean {:.1}, max {}\n",
        t.render(),
        eng.loop_iterations,
        stats.cycles,
        eng.loop_iterations as f64 / (stats.cycles.max(1)) as f64,
        eng.jump_len.count,
        eng.jump_len.mean(),
        eng.jump_len.max,
        eng.heap_depth.mean(),
        eng.heap_depth.max,
    );
    let mut h = Table::new(vec!["component", "host time", "share"]);
    let host_total = eng.host_total_ns().max(1);
    for (i, comp) in ENGINE_HOST_COMPONENTS.iter().enumerate() {
        let ns = eng.host_ns[i];
        h.row(vec![
            comp.to_string(),
            format!("{:.3} ms", ns as f64 / 1e6),
            format!("{:.1}%", 100.0 * ns as f64 / host_total as f64),
        ]);
    }
    out.push_str(&format!(
        "\nhost time by component ({} of {} iterations sampled, stride {})\n{}\
         dominant component: {}\n",
        eng.host_samples,
        eng.loop_iterations,
        eng.host_sampling,
        h.render(),
        eng.dominant_component().unwrap_or("-"),
    ));
    Some(out)
}

/// Renders the TB lifecycle attribution summary: the four-way lifetime
/// decomposition, the bound/stolen child queue-wait split, queue wait
/// by nesting depth, and the launch-DAG critical path. `None` when the
/// run did not profile latency (the caller hard-errors).
fn latency_summary(stats: &gpu_sim::stats::SimStats) -> Option<String> {
    use gpu_sim::stats::LatencyStats;
    use sim_metrics::report::Table;
    let lat = stats.latency.as_ref()?;
    let mut t = Table::new(vec!["component", "quantiles"]);
    for (name, h) in [
        ("lifetime", &lat.lifetime),
        ("launch path", &lat.launch_path),
        ("  of which KMU wait", &lat.kmu_wait),
        ("queue wait", &lat.queue_wait),
        ("dispatch gap", &lat.dispatch_gap),
        ("exec", &lat.exec),
        ("child queue wait", &lat.child_queue_wait),
        ("  bound children", &lat.bound_queue_wait),
        ("  stolen children", &lat.stolen_queue_wait),
    ] {
        t.row(vec![name.to_string(), LatencyStats::quantile_line(h)]);
    }
    let mut d = Table::new(vec!["nesting depth", "TBs", "queue wait"]);
    for (depth, h) in &lat.depth_queue_wait {
        d.row(vec![depth.to_string(), h.count.to_string(), LatencyStats::quantile_line(h)]);
    }
    let cp = &lat.critical_path;
    Some(format!(
        "latency attribution ({} TBs, {} partition violations, KMU depth high-water {})\n{}\
         \nqueue wait by nesting depth\n{}\
         \ncritical path: {} TBs, {} cycles ({} queue / {} exec, {:.1}% scheduling-induced)\n",
        lat.tbs,
        lat.partition_violations,
        lat.kmu_depth_hwm,
        t.render(),
        d.render(),
        cp.len,
        cp.cycles,
        cp.queue_cycles,
        cp.exec_cycles,
        100.0 * cp.queue_cycles as f64 / (cp.queue_cycles + cp.exec_cycles).max(1) as f64,
    ))
}

/// Renders the per-class reuse summary for a profiled run: hit counts
/// and shares per lineage class at each cache level, mean reuse
/// distances, plus the L2 same/cross-SMX and bound/stolen splits.
/// `None` when the run did not profile locality (the caller
/// hard-errors).
fn locality_summary(stats: &gpu_sim::stats::SimStats) -> Option<String> {
    use gpu_sim::cache::ReuseClass;
    use sim_metrics::report::Table;
    let loc = stats.locality.as_ref()?;
    let mut t = Table::new(vec![
        "reuse class",
        "l1 hits",
        "l1 share",
        "l1 dist",
        "l2 hits",
        "l2 share",
        "l2 dist",
    ]);
    for class in ReuseClass::ALL {
        let i = class.index();
        t.row(vec![
            class.name().to_string(),
            stats.l1.prov.class(class).to_string(),
            format!("{:.1}%", 100.0 * stats.l1.prov.share(class)),
            format!("{:.0} cyc", loc.l1_reuse_dist[i].mean()),
            stats.l2.prov.class(class).to_string(),
            format!("{:.1}%", 100.0 * stats.l2.prov.share(class)),
            format!("{:.0} cyc", loc.l2_reuse_dist[i].mean()),
        ]);
    }
    Some(format!(
        "locality provenance\n{}\
         L2 hits on installing SMX: {} same, {} cross\n\
         child L1 hits: bound {} ({:.1}% parent-child), stolen {} ({:.1}% parent-child)\n",
        t.render(),
        stats.l2.prov.same_smx,
        stats.l2.prov.cross_smx,
        loc.bind.bound_hits,
        100.0 * loc.bind.bound_share(),
        loc.bind.stolen_hits,
        100.0 * loc.bind.stolen_share(),
    ))
}
