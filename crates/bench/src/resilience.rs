//! Crash-safe, resumable sweep execution.
//!
//! This layer wraps the raw matrix executor ([`crate::sweep::run_cells`])
//! with the three robustness mechanisms ROADMAP item 3 needs before the
//! sweep can be served incrementally:
//!
//! * **Content-addressed cell cache** — every completed cell is keyed by
//!   [`cell_key`] (a hash over workload id, launch model, scheduler, GPU
//!   config, sweep tag, schema version, and the crate's
//!   [`CODE_FINGERPRINT`]) and persisted to an append-only
//!   [`sim_metrics::journal`] under `--cache-dir`. A re-run — including
//!   one resumed after a SIGKILL — looks every cell up first and
//!   recomputes only misses. Damaged journal tails are detected by
//!   checksum, logged, truncated away, and recomputed: a corrupt record
//!   is never served.
//! * **Per-cell supervision** — each cell runs under `catch_unwind` with
//!   the forward-progress watchdog tightened to `--cell-deadline`
//!   simulated cycles ([`gpu_sim::config::GpuConfig::tighten_watchdog`]).
//!   Panics, deadline trips, and structured `SimError`s become
//!   [`CellFailure`] records; failed cells retry up to `--retries` times
//!   with deterministic exponential backoff before being recorded as
//!   permanent failures in the sweep document.
//! * **Harness-level fault injection** — a seed-derived
//!   [`HarnessFaultPlan`] mirrors `gpu_sim::fault` one layer up: inject
//!   a panic into a cell, wedge a cell (every SMX killed forever, so the
//!   deadline machinery must catch it), truncate the journal mid-record,
//!   or flip a checksum byte. The `tests/sweep_resilience.rs` suite
//!   drives these to prove kill-and-resume byte-identity, corruption
//!   recomputation, and jobs-count-invariant retries.
//!
//! With a default [`Resilience`] (no cache dir, zero retries, no faults,
//! no deadline) the behavior — including every stderr progress line and
//! failure message — is identical to the pre-resilience executor, which
//! is what keeps the default `repro all` artifact byte-stable.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use dynpar::LaunchLatency;
use gpu_sim::config::GpuConfig;
use gpu_sim::error::SimError;
use gpu_sim::fault::{Fault, FaultPlan};
use gpu_sim::types::SmxId;
use sim_metrics::harness::{run_with_latency_faulted, RunRecord};
use sim_metrics::journal::{fnv1a64, JournalWriter};
use sim_metrics::json::{parse, run_from_json, run_to_json, Json};

use crate::sweep::{panic_message, run_cells, MatrixCell, SweepFailure, SweepOutcome};

/// Fingerprint of the simulation code baked into every cache key: a
/// cached cell is only reused by a binary whose simulation semantics
/// are declared unchanged. Bump the revision suffix whenever a change
/// alters any simulated statistic (scheduler behavior, cache model,
/// launch path, …); version bumps pick it up automatically. Doc- or
/// harness-only changes keep the fingerprint — and the cache — intact.
pub const CODE_FINGERPRINT: &str = concat!("laperm-bench/", env!("CARGO_PKG_VERSION"), "+sim-r1");

/// Watchdog window forced onto wedged-cell injections: tight enough
/// that a wedged cell fails in simulated moments, loose enough that the
/// liveness suite's own scenarios (which use 20k windows) agree.
const WEDGE_WATCHDOG: u64 = 20_000;

/// Longest single backoff sleep, so a fat retry budget cannot stall a
/// worker for minutes.
const MAX_BACKOFF_MS: u64 = 2_000;

/// The content address of one matrix cell under one sweep
/// configuration, as 32 hex digits (two independent FNV-1a 64 passes).
/// Everything that can change a cell's statistics is folded in: the
/// workload/model/scheduler ids, the sweep tag (scale + input seed),
/// the full `GpuConfig` (engine mode, profiling flags, limits — via its
/// `Debug` rendering), the simulator-level fault seed if any, the
/// `repro.json` schema version, and [`CODE_FINGERPRINT`].
pub fn cell_key(
    cell: &MatrixCell,
    cfg: &GpuConfig,
    sweep_tag: &str,
    sim_fault_seed: Option<u64>,
) -> String {
    cell_key_with_fingerprint(cell, cfg, sweep_tag, sim_fault_seed, CODE_FINGERPRINT)
}

/// [`cell_key`] with an explicit code fingerprint (exposed so tests can
/// prove that a fingerprint change misses the cache and a no-op
/// rebuild with the same fingerprint hits it).
pub fn cell_key_with_fingerprint(
    cell: &MatrixCell,
    cfg: &GpuConfig,
    sweep_tag: &str,
    sim_fault_seed: Option<u64>,
    fingerprint: &str,
) -> String {
    let canonical = format!(
        "schema=v{}|code={fingerprint}|sweep={sweep_tag}|workload={}|model={}|scheduler={}\
         |sim_fault={sim_fault_seed:?}|cfg={cfg:?}",
        crate::sweep::SWEEP_SCHEMA_VERSION,
        cell.workload.full_name(),
        cell.model.name(),
        cell.scheduler.name(),
    );
    let lo = fnv1a64(canonical.as_bytes());
    // Second pass over a salted copy: 128 key bits from a 64-bit hash
    // primitive, so unrelated cells cannot collide by accident.
    let hi = fnv1a64(format!("laperm-cell-salt|{canonical}").as_bytes());
    format!("{hi:016x}{lo:016x}")
}

/// Why one cell attempt (or a whole cell, after retries ran out)
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The cell panicked; the payload message is preserved.
    Panic(String),
    /// The per-cell deadline (forward-progress watchdog) fired.
    Deadline {
        /// The watchdog window that was armed, in simulated cycles.
        window: u64,
        /// Simulated cycle at which the watchdog fired.
        cycle: u64,
        /// The full structured error text (includes suspect TBs).
        message: String,
    },
    /// The simulator returned a structured error other than a
    /// watchdog trip.
    Sim(String),
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Deadline { window, cycle, .. } => {
                write!(f, "deadline: no forward progress for {window} cycles (at cycle {cycle})")
            }
            FailureCause::Sim(msg) => write!(f, "sim error: {msg}"),
        }
    }
}

/// A structured per-cell failure: which cell, which configuration, how
/// many attempts were spent, and why the last one failed. This is the
/// supervised form of what used to be a bare panic string.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Index of the cell in the canonical matrix order.
    pub cell_index: usize,
    /// Workload display name.
    pub workload: String,
    /// Launch model name.
    pub launch_model: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Attempts spent (1 = no retries were configured or needed).
    pub attempts: u32,
    /// Why the final attempt failed.
    pub cause: FailureCause,
}

impl CellFailure {
    /// The failure rendered the way the sweep document reports it. For
    /// simulator errors this is the exact message the pre-resilience
    /// executor produced, so default-path documents are byte-stable.
    pub fn error_message(&self) -> String {
        match &self.cause {
            FailureCause::Panic(msg) => msg.clone(),
            FailureCause::Deadline { message, .. } | FailureCause::Sim(message) => format!(
                "{} under {}/{} failed: {message}",
                self.workload, self.launch_model, self.scheduler
            ),
        }
    }

    /// Converts into the sweep document's failure row.
    pub fn to_sweep_failure(&self) -> SweepFailure {
        SweepFailure {
            cell_index: self.cell_index,
            workload: self.workload.clone(),
            launch_model: self.launch_model.clone(),
            scheduler: self.scheduler.clone(),
            attempts: self.attempts,
            error: self.error_message(),
        }
    }
}

/// One harness-level fault. The first two target cell execution; the
/// last two target the cache journal (applied between runs by
/// [`HarnessFaultPlan::apply_journal_faults`], the way a crash or disk
/// corruption would strike between processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessFault {
    /// The cell's first `attempts` attempts panic before the simulator
    /// is even built.
    PanicCell {
        /// Target cell index in canonical matrix order.
        cell: usize,
        /// How many leading attempts panic (`u32::MAX` = all).
        attempts: u32,
    },
    /// The cell's first `attempts` attempts run with every SMX killed
    /// from cycle 0 forever: the watchdog/deadline machinery must trip.
    WedgeCell {
        /// Target cell index in canonical matrix order.
        cell: usize,
        /// How many leading attempts wedge (`u32::MAX` = all).
        attempts: u32,
    },
    /// Truncate the cache journal in the middle of record `record`.
    TruncateJournal {
        /// Zero-based record index to tear.
        record: usize,
    },
    /// Flip a byte of record `record`'s stored checksum.
    FlipChecksumByte {
        /// Zero-based record index to damage.
        record: usize,
    },
}

/// A deterministic set of harness-level faults, mirroring
/// [`gpu_sim::fault::FaultPlan`] one layer up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessFaultPlan {
    seed: u64,
    faults: Vec<HarnessFault>,
}

impl HarnessFaultPlan {
    /// A plan with an explicit fault list.
    pub fn new(faults: Vec<HarnessFault>) -> Self {
        HarnessFaultPlan { seed: 0, faults }
    }

    /// Derives one to four faults deterministically from `seed` (the
    /// same xorshift64* stream shape as `gpu_sim::fault`): panics and
    /// wedges strike cells below `num_cells`, journal faults strike
    /// early records. Injected cell faults are always transient (1–2
    /// attempts), so a retry budget of 2 recovers every seeded plan.
    pub fn from_seed(seed: u64, num_cells: usize) -> Self {
        let mut state = seed | 1;
        let mut next = move || -> u64 {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let cells = num_cells.max(1) as u64;
        let count = 1 + (next() % 4) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match next() % 4 {
                0 => HarnessFault::PanicCell {
                    cell: (next() % cells) as usize,
                    attempts: 1 + (next() % 2) as u32,
                },
                1 => HarnessFault::WedgeCell {
                    cell: (next() % cells) as usize,
                    attempts: 1 + (next() % 2) as u32,
                },
                2 => HarnessFault::TruncateJournal { record: (next() % 8) as usize },
                _ => HarnessFault::FlipChecksumByte { record: (next() % 8) as usize },
            };
            faults.push(fault);
        }
        HarnessFaultPlan { seed, faults }
    }

    /// The seed the plan was derived from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected faults.
    pub fn faults(&self) -> &[HarnessFault] {
        &self.faults
    }

    /// Whether `cell`'s 1-based `attempt` should panic.
    pub fn panics(&self, cell: usize, attempt: u32) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, HarnessFault::PanicCell { cell: c, attempts } if c == cell && attempt <= attempts)
        })
    }

    /// Whether `cell`'s 1-based `attempt` should run wedged.
    pub fn wedges(&self, cell: usize, attempt: u32) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, HarnessFault::WedgeCell { cell: c, attempts } if c == cell && attempt <= attempts)
        })
    }

    /// Applies the plan's journal faults (truncation, checksum flips)
    /// to the journal at `path`, returning a description of each fault
    /// that actually landed (a fault targeting a record the journal
    /// does not hold is a no-op).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from the corruption helpers.
    pub fn apply_journal_faults(&self, path: &Path) -> std::io::Result<Vec<String>> {
        let mut applied = Vec::new();
        for f in &self.faults {
            match *f {
                HarnessFault::TruncateJournal { record } => {
                    if sim_metrics::journal::truncate_mid_record(path, record)? {
                        applied.push(format!("truncated journal mid-record {record}"));
                    }
                }
                HarnessFault::FlipChecksumByte { record } => {
                    if sim_metrics::journal::corrupt_record_checksum(path, record)? {
                        applied.push(format!("flipped checksum byte of record {record}"));
                    }
                }
                HarnessFault::PanicCell { .. } | HarnessFault::WedgeCell { .. } => {}
            }
        }
        Ok(applied)
    }
}

/// The persistent content-addressed cell cache: a last-writer-wins view
/// over the append-only journal in its cache directory.
pub struct CellCache {
    path: PathBuf,
    entries: HashMap<String, RunRecord>,
    writer: Mutex<JournalWriter>,
    damage: Option<String>,
    malformed: usize,
}

impl CellCache {
    /// The journal file a cache directory uses.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("cells.journal")
    }

    /// Opens (creating if needed) the cache under `dir`: reads the
    /// journal, truncates any damaged tail so the file is clean again,
    /// and merges intact records last-writer-wins. Records that fail to
    /// parse (e.g. written by an older schema) are skipped and counted,
    /// never served.
    ///
    /// # Errors
    ///
    /// Reports directory-creation and journal I/O errors.
    pub fn open(dir: &Path) -> Result<CellCache, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create cache dir {dir:?}: {e}"))?;
        let path = Self::journal_path(dir);
        let (writer, read) = JournalWriter::open_repairing(&path)
            .map_err(|e| format!("open cell journal {path:?}: {e}"))?;
        let mut entries = HashMap::new();
        let mut malformed = 0usize;
        for payload in &read.payloads {
            match parse_cache_payload(payload) {
                Some((key, record)) => {
                    entries.insert(key, record);
                }
                None => malformed += 1,
            }
        }
        Ok(CellCache {
            path,
            entries,
            writer: Mutex::new(writer),
            damage: read.damage.map(|d| d.to_string()),
            malformed,
        })
    }

    /// The journal file backing this cache.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Damage found (and repaired away) when the journal was opened.
    pub fn damage(&self) -> Option<&str> {
        self.damage.as_deref()
    }

    /// Intact-but-unparseable records skipped at open.
    pub fn malformed(&self) -> usize {
        self.malformed
    }

    /// Cached entries visible after the last-writer-wins merge.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached record for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<&RunRecord> {
        self.entries.get(key)
    }

    /// Appends a completed cell to the journal. The write is a single
    /// unbuffered syscall, so a SIGKILL between cells loses at most the
    /// record being written — which the next open detects and drops.
    ///
    /// # Errors
    ///
    /// Reports journal write errors.
    pub fn commit(&self, key: &str, record: &RunRecord) -> Result<(), String> {
        let payload = Json::Obj(vec![
            ("key".into(), Json::Str(key.to_string())),
            ("run".into(), run_to_json(record)),
        ])
        .render();
        let mut writer = self.writer.lock().map_err(|_| "cell journal lock poisoned")?;
        writer.append(payload.as_bytes()).map_err(|e| format!("append to cell journal: {e}"))
    }
}

fn parse_cache_payload(payload: &[u8]) -> Option<(String, RunRecord)> {
    let text = std::str::from_utf8(payload).ok()?;
    let v = parse(text).ok()?;
    let key = v.get("key")?.as_str()?.to_string();
    let record = run_from_json(v.get("run")?).ok()?;
    Some((key, record))
}

/// Knobs of the resilient executor. [`Resilience::default`] disables
/// everything and reproduces the raw executor's behavior exactly.
#[derive(Debug, Clone, Default)]
pub struct Resilience {
    /// Cache directory (`--cache-dir`); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Retries per failed cell (`--retries`); 0 = fail on first error.
    pub retries: u32,
    /// Base backoff in wall milliseconds before retry `n`, growing as
    /// `backoff_ms << (n-1)` capped at 2 s (`--retry-backoff-ms`).
    /// Backoff paces wall-clock execution only; it cannot affect any
    /// simulated statistic.
    pub backoff_ms: u64,
    /// Per-cell deadline in simulated cycles (`--cell-deadline`),
    /// applied by tightening the forward-progress watchdog.
    pub cell_deadline: Option<u64>,
    /// Kill the process (SIGKILL-hard, no unwinding, no flushing) right
    /// after this many cells have been committed to the cache
    /// (`--kill-after-cells`). The CI resilience job uses this to prove
    /// kill-and-resume byte-identity; useless without a cache dir.
    pub kill_after_cells: Option<u64>,
    /// Harness-level fault plan (tests only).
    pub faults: Option<HarnessFaultPlan>,
    /// Simulator-level fault-plan seed, mixed per cell index — the
    /// composed-layer hook `tests/liveness.rs` uses. Folded into the
    /// cache key, so faulted and healthy sweeps never share entries.
    pub sim_fault_seed: Option<u64>,
}

/// What the resilient executor did besides producing records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Cells served from the cache.
    pub cache_hits: u64,
    /// Cells looked up but absent (then computed).
    pub cache_misses: u64,
    /// Cells committed to the cache this run.
    pub committed: u64,
    /// Journal damage found and repaired at open, if any.
    pub journal_damage: Option<String>,
    /// Intact-but-unparseable journal records skipped at open.
    pub journal_malformed: usize,
    /// Cell attempts that failed and were retried.
    pub retried_attempts: u64,
}

/// Runs a cell list under the resilience policy. Records and failures
/// come back in canonical input order for any `jobs`; an `Err` is a
/// setup failure (unusable cache directory), never a cell failure.
///
/// # Errors
///
/// Reports cache-directory and journal I/O errors at setup.
// The worker closure's Err arm is a full CellFailure; it is built once
// per *failed* cell, so its size is irrelevant next to a simulation.
#[allow(clippy::result_large_err)]
pub fn run_matrix_cells_resilient(
    cells: &[MatrixCell],
    jobs: usize,
    cfg: &GpuConfig,
    sweep_tag: &str,
    res: &Resilience,
) -> Result<(SweepOutcome, ResilienceReport), String> {
    let cache = match &res.cache_dir {
        Some(dir) => Some(CellCache::open(dir)?),
        None => None,
    };
    let mut run_cfg = cfg.clone();
    if let Some(deadline) = res.cell_deadline {
        run_cfg.tighten_watchdog(deadline);
    }
    let mut wedge_cfg = run_cfg.clone();
    wedge_cfg.tighten_watchdog(WEDGE_WATCHDOG);

    let total = cells.len();
    let done = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let retried = AtomicU64::new(0);

    let indices: Vec<usize> = (0..cells.len()).collect();
    let results = run_cells(&indices, jobs, |&i| {
        let cell = &cells[i];
        let key = cache.as_ref().map(|_| cell_key(cell, &run_cfg, sweep_tag, res.sim_fault_seed));
        if let (Some(cache), Some(key)) = (&cache, &key) {
            if let Some(record) = cache.lookup(key) {
                hits.fetch_add(1, Ordering::Relaxed);
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[{n}/{total}] {} {} {}: cached",
                    cell.workload.full_name(),
                    cell.model,
                    cell.scheduler
                );
                return Ok(record.clone());
            }
            misses.fetch_add(1, Ordering::Relaxed);
        }

        let total_attempts = res.retries.saturating_add(1);
        let mut last_cause = FailureCause::Panic("cell never attempted".to_string());
        for attempt in 1..=total_attempts {
            if attempt > 1 {
                retried.fetch_add(1, Ordering::Relaxed);
                backoff(res.backoff_ms, attempt);
            }
            match attempt_cell(cell, i, attempt, &run_cfg, &wedge_cfg, res) {
                Ok(record) => {
                    if let (Some(cache), Some(key)) = (&cache, &key) {
                        if let Err(e) = cache.commit(key, &record) {
                            eprintln!("warning: {e}");
                        } else {
                            let c = committed.fetch_add(1, Ordering::Relaxed) + 1;
                            if Some(c) == res.kill_after_cells {
                                kill_self_hard();
                            }
                        }
                    }
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{n}/{total}] {} {} {}: {} cycles, IPC {:.1}",
                        cell.workload.full_name(),
                        cell.model,
                        cell.scheduler,
                        record.cycles,
                        record.ipc
                    );
                    return Ok(record);
                }
                Err(cause) => {
                    if attempt < total_attempts {
                        eprintln!(
                            "retrying {} {} {} (attempt {attempt} of {total_attempts}): {cause}",
                            cell.workload.full_name(),
                            cell.model,
                            cell.scheduler
                        );
                    }
                    last_cause = cause;
                }
            }
        }
        Err(CellFailure {
            cell_index: i,
            workload: cell.workload.full_name(),
            launch_model: cell.model.name().to_string(),
            scheduler: cell.scheduler.name().to_string(),
            attempts: total_attempts,
            cause: last_cause,
        })
    });

    let mut records = Vec::new();
    let mut failures = Vec::new();
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok(Ok(record)) => records.push(record),
            Ok(Err(failure)) => failures.push(failure.to_sweep_failure()),
            // The supervision loop itself panicked — nothing structured
            // survived, so fall back to the raw message.
            Err(error) => {
                let cell = &cells[i];
                failures.push(SweepFailure {
                    cell_index: i,
                    workload: cell.workload.full_name(),
                    launch_model: cell.model.name().to_string(),
                    scheduler: cell.scheduler.name().to_string(),
                    attempts: 1,
                    error,
                });
            }
        }
    }
    let report = ResilienceReport {
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
        committed: committed.into_inner(),
        journal_damage: cache.as_ref().and_then(|c| c.damage().map(str::to_string)),
        journal_malformed: cache.as_ref().map(CellCache::malformed).unwrap_or(0),
        retried_attempts: retried.into_inner(),
    };
    Ok((SweepOutcome { records, failures }, report))
}

/// One supervised attempt at one cell: harness faults first, then the
/// simulator (with the composed simulator-level fault plan, if any),
/// with panics caught and `SimError`s classified.
fn attempt_cell(
    cell: &MatrixCell,
    index: usize,
    attempt: u32,
    run_cfg: &GpuConfig,
    wedge_cfg: &GpuConfig,
    res: &Resilience,
) -> Result<RunRecord, FailureCause> {
    let plan = res.faults.as_ref();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if plan.is_some_and(|p| p.panics(index, attempt)) {
            panic!("injected harness panic: cell {index} attempt {attempt}");
        }
        let (cfg, fault_plan) = if plan.is_some_and(|p| p.wedges(index, attempt)) {
            (wedge_cfg, Some(kill_all_smxs_plan(wedge_cfg)))
        } else {
            (run_cfg, res.sim_fault_seed.map(|s| sim_plan_for_cell(s, index, run_cfg)))
        };
        run_with_latency_faulted(
            &cell.workload,
            cell.model,
            LaunchLatency::default_for(cell.model),
            cell.scheduler,
            cfg,
            fault_plan,
        )
    }));
    match result {
        Ok(Ok(record)) => Ok(record),
        Ok(Err(e)) => match &e {
            SimError::NoForwardProgress { window, cycle, .. } => Err(FailureCause::Deadline {
                window: *window,
                cycle: *cycle,
                message: e.to_string(),
            }),
            _ => Err(FailureCause::Sim(e.to_string())),
        },
        Err(payload) => Err(FailureCause::Panic(panic_message(payload.as_ref()))),
    }
}

/// A plan that freezes every SMX from cycle 0 forever — the harness
/// wedge injection. The watchdog (tightened to [`WEDGE_WATCHDOG`]) is
/// what turns this into a structured deadline failure.
fn kill_all_smxs_plan(cfg: &GpuConfig) -> FaultPlan {
    FaultPlan::new(
        (0..cfg.num_smxs)
            .map(|i| Fault::KillSmx { smx: SmxId(i), from: 0, until: u64::MAX })
            .collect(),
    )
}

/// The simulator-level plan for one cell under a composed sweep: the
/// base seed mixed with the cell index (golden-ratio multiply) so every
/// cell sees a different but fully deterministic fault mix.
fn sim_plan_for_cell(base_seed: u64, index: usize, cfg: &GpuConfig) -> FaultPlan {
    let mixed = base_seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    FaultPlan::from_seed(mixed, cfg.num_smxs)
}

/// Deterministic exponential backoff before 1-based retry `attempt`
/// (attempt 2 sleeps `base`, attempt 3 sleeps `2 * base`, …, capped).
fn backoff(base_ms: u64, attempt: u32) {
    if base_ms == 0 {
        return;
    }
    let shift = attempt.saturating_sub(2).min(16);
    let ms = base_ms.saturating_mul(1 << shift).min(MAX_BACKOFF_MS);
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// Kills the current process without unwinding or flushing — the
/// harness's stand-in for a SIGKILL from outside. Prefers a real
/// SIGKILL (so even atexit hooks cannot run) and falls back to abort.
fn kill_self_hard() -> ! {
    let _ =
        std::process::Command::new("kill").arg("-9").arg(std::process::id().to_string()).status();
    std::process::abort();
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::sweep::matrix_cells;
    use gpu_sim::stats::StallBreakdown;
    use sim_metrics::harness::HostCost;
    use workloads::Scale;

    fn cells() -> Vec<MatrixCell> {
        matrix_cells(Scale::Tiny, 0)
    }

    fn record(workload: &str, cycles: u64) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            launch_model: "dtbl".into(),
            scheduler: "rr".into(),
            cycles,
            ipc: 1.5,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.25,
            child_l1_hit_rate: 0.5,
            mean_child_wait: 10.0,
            parent_smx_affinity: 0.5,
            smx_utilization: 0.5,
            load_imbalance: 1.0,
            dynamic_tbs: 4,
            total_tbs: 8,
            steals: 0,
            queue_overflows: 0,
            queue_pushes: 0,
            max_queue_depth: 0,
            queue_search_cycles: 0,
            table_overflows: 0,
            stalls: StallBreakdown::default(),
            locality: None,
            engine: None,
            latency: None,
            host: HostCost::default(),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("laperm-resilience-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn cell_keys_are_stable_and_distinguish_every_axis() {
        let cells = cells();
        let cfg = GpuConfig::kepler_k20c();
        let key = |c: &MatrixCell| cell_key(c, &cfg, "tiny/0", None);
        assert_eq!(key(&cells[0]), key(&cells[0]), "same cell must hash identically");
        assert_eq!(key(&cells[0]).len(), 32);
        // All 128 canonical cells get distinct keys.
        let mut keys: Vec<String> = cells.iter().map(key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "cell key collision in the canonical matrix");
        // The sweep tag, fault seed, and config are all load-bearing.
        assert_ne!(key(&cells[0]), cell_key(&cells[0], &cfg, "ci/0", None));
        assert_ne!(key(&cells[0]), cell_key(&cells[0], &cfg, "tiny/1", None));
        assert_ne!(key(&cells[0]), cell_key(&cells[0], &cfg, "tiny/0", Some(7)));
        let mut other_cfg = cfg.clone();
        other_cfg.profile_locality = !cfg.profile_locality;
        assert_ne!(key(&cells[0]), cell_key(&cells[0], &other_cfg, "tiny/0", None));
    }

    #[test]
    fn fingerprint_changes_miss_but_noop_rebuilds_hit() {
        let cells = cells();
        let cfg = GpuConfig::kepler_k20c();
        let shipped = cell_key(&cells[0], &cfg, "tiny/0", None);
        // A no-op rebuild (same declared fingerprint) addresses the same
        // entry; a semantic revision misses and recomputes.
        let rebuilt = cell_key_with_fingerprint(&cells[0], &cfg, "tiny/0", None, CODE_FINGERPRINT);
        assert_eq!(shipped, rebuilt);
        let revised =
            cell_key_with_fingerprint(&cells[0], &cfg, "tiny/0", None, "laperm-bench/9.9.9+sim-r2");
        assert_ne!(shipped, revised);
    }

    #[test]
    fn harness_fault_plans_are_deterministic_and_bounded() {
        for seed in 0..32u64 {
            let a = HarnessFaultPlan::from_seed(seed, 16);
            let b = HarnessFaultPlan::from_seed(seed, 16);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.faults().is_empty() && a.faults().len() <= 4);
            for f in a.faults() {
                match *f {
                    HarnessFault::PanicCell { cell, attempts }
                    | HarnessFault::WedgeCell { cell, attempts } => {
                        assert!(cell < 16, "seed {seed}: cell {cell} out of range");
                        assert!(
                            (1..=2).contains(&attempts),
                            "seed {seed}: seeded cell faults must be transient"
                        );
                    }
                    HarnessFault::TruncateJournal { record }
                    | HarnessFault::FlipChecksumByte { record } => assert!(record < 8),
                }
            }
        }
    }

    #[test]
    fn fault_predicates_cover_leading_attempts_only() {
        let plan = HarnessFaultPlan::new(vec![
            HarnessFault::PanicCell { cell: 3, attempts: 2 },
            HarnessFault::WedgeCell { cell: 5, attempts: 1 },
        ]);
        assert!(plan.panics(3, 1) && plan.panics(3, 2) && !plan.panics(3, 3));
        assert!(!plan.panics(4, 1));
        assert!(plan.wedges(5, 1) && !plan.wedges(5, 2));
        assert!(!plan.wedges(3, 1));
    }

    #[test]
    fn cache_round_trips_and_duplicate_keys_take_the_last_writer() {
        let dir = temp_dir("cache-lww");
        {
            let cache = CellCache::open(&dir).unwrap();
            assert!(cache.is_empty());
            cache.commit("key-a", &record("bfs-citation", 100)).unwrap();
            cache.commit("key-b", &record("join-uniform", 200)).unwrap();
            // Recomputed cell appends a fresh record under the same key.
            cache.commit("key-a", &record("bfs-citation", 300)).unwrap();
        }
        let cache = CellCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.damage(), None);
        assert_eq!(cache.malformed(), 0);
        assert_eq!(cache.lookup("key-a").unwrap().cycles, 300, "last writer must win");
        assert_eq!(cache.lookup("key-b").unwrap().cycles, 200);
        assert!(cache.lookup("key-c").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_cache_records_are_dropped_and_reported() {
        let dir = temp_dir("cache-corrupt");
        {
            let cache = CellCache::open(&dir).unwrap();
            cache.commit("key-a", &record("bfs-citation", 100)).unwrap();
            cache.commit("key-b", &record("join-uniform", 200)).unwrap();
        }
        let journal = CellCache::journal_path(&dir);
        assert!(sim_metrics::journal::corrupt_record_checksum(&journal, 1).unwrap());
        let cache = CellCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1, "damaged record must not be served");
        assert!(cache.damage().unwrap().contains("checksum mismatch"));
        assert!(cache.lookup("key-b").is_none());
        // The open repaired the file: a third open is clean.
        drop(cache);
        let cache = CellCache::open(&dir).unwrap();
        assert_eq!(cache.damage(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backoff_shifts_are_capped() {
        // Pure timing: just prove the arithmetic cannot overflow or
        // sleep past the cap even at absurd attempt counts.
        backoff(0, 1000);
        let shift = 1000u32.saturating_sub(2).min(16);
        assert_eq!(shift, 16);
        assert_eq!(u64::MAX.saturating_mul(1 << shift).min(MAX_BACKOFF_MS), MAX_BACKOFF_MS);
    }
}
