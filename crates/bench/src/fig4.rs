//! Figure 4: the scheduling walk-through example.
//!
//! Reproduces the paper's toy machine — four SMXs holding one TB each —
//! running a parent kernel of eight TBs where P2 launches two children
//! (C0, C1) and P4 launches four (C2-C5), and prints where each policy
//! places every TB.

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
use gpu_sim::stats::SimStats;
use gpu_sim::tb_sched::RoundRobinScheduler;
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use sim_metrics::report::Table;

const PARENT: KernelKindId = KernelKindId(0);
const CHILD: KernelKindId = KernelKindId(1);

/// The Figure 4(a) launch structure as a program source.
#[derive(Debug)]
pub struct Figure4Source;

impl ProgramSource for Figure4Source {
    fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => {
                let mut ops = vec![TbOp::Compute(20)];
                let children = match tb_index {
                    2 => 2,
                    4 => 4,
                    _ => 0,
                };
                if children > 0 {
                    ops.push(TbOp::Launch(LaunchSpec {
                        kind: CHILD,
                        param: u64::from(tb_index),
                        num_tbs: children,
                        req: ResourceReq::new(32, 8, 0),
                    }));
                }
                ops.push(TbOp::Compute(20));
                TbProgram::new(ops)
            }
            _ => TbProgram::new(vec![TbOp::Compute(20)]),
        }
    }
}

fn run_policy(policy: Option<LaPermPolicy>) -> SimStats {
    let cfg = GpuConfig::figure4_toy();
    let mut sim = Simulator::new(cfg.clone(), Box::new(Figure4Source));
    sim = match policy {
        Some(p) => {
            sim.with_scheduler(Box::new(LaPermScheduler::new(p, LaPermConfig::for_gpu(&cfg))))
        }
        None => sim.with_scheduler(Box::new(RoundRobinScheduler::new())),
    };
    sim = sim.with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
    sim.launch_host_kernel(PARENT, 0, 8, ResourceReq::new(32, 8, 0)).expect("toy kernel launches");
    sim.run_to_completion().expect("toy run completes")
}

fn label(stats: &SimStats, i: usize) -> String {
    let r = &stats.tb_records[i];
    if r.is_dynamic {
        // Children are numbered C0.. in dispatch order per parent, as in
        // the paper: C0-C1 from P2, C2-C5 from P4.
        let (_, parent_tb, _) = r.parent.expect("dynamic TB has a parent");
        let earlier = stats.tb_records[..i].iter().filter(|x| x.is_dynamic).count();
        let _ = parent_tb;
        format!("C{earlier}")
    } else {
        format!("P{}", r.tb.index)
    }
}

/// Renders the Figure 4 placement table for all four policies.
pub fn figure4() -> String {
    let mut out = String::from(
        "Figure 4: TB placements on a 4-SMX toy GPU (one TB per SMX)\n\
         Parent kernel P0-P7; P2 launches C0-C1, P4 launches C2-C5.\n\
         Each column lists the TBs an SMX executed, in order.\n",
    );
    let policies = [
        ("(b) round-robin", None),
        ("(c) TB-Pri", Some(LaPermPolicy::TbPri)),
        ("(d) SMX-Bind", Some(LaPermPolicy::SmxBind)),
        ("(e) Adaptive-Bind", Some(LaPermPolicy::AdaptiveBind)),
    ];
    for (name, policy) in policies {
        let stats = run_policy(policy);
        let mut per_smx: Vec<Vec<String>> = vec![Vec::new(); 4];
        for i in 0..stats.tb_records.len() {
            let r = &stats.tb_records[i];
            per_smx[r.smx.index()].push(label(&stats, i));
        }
        let mut t = Table::new(vec!["SMX0", "SMX1", "SMX2", "SMX3"]);
        let depth = per_smx.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..depth {
            t.row(
                per_smx
                    .iter()
                    .map(|col| col.get(round).cloned().unwrap_or_default())
                    .collect::<Vec<String>>(),
            );
        }
        out.push_str(&format!("\n{name}\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn figure4_mentions_all_tbs() {
        let s = figure4();
        for tb in ["P0", "P7", "C0", "C5"] {
            assert!(s.contains(tb), "missing {tb} in:\n{s}");
        }
    }

    #[test]
    fn smx_bind_section_places_children_with_parents() {
        let stats = run_policy(Some(LaPermPolicy::SmxBind));
        for r in stats.tb_records.iter().filter(|r| r.is_dynamic) {
            let (_, _, parent_smx) = r.parent.unwrap();
            assert_eq!(r.smx, parent_smx);
        }
    }
}
