//! Table and figure regeneration (see the experiment index in DESIGN.md).

use std::sync::Arc;

use dynpar::{DtblModel, LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use sim_metrics::footprint::FootprintSummary;
use sim_metrics::harness::{run_once, run_with_latency, LocalityRecord, RunRecord, SchedulerKind};
use sim_metrics::report::{mean, pct, ratio, Table};
use workloads::{suite, Scale, Workload};

/// All runs of the main evaluation matrix: every workload under both
/// launch models and all four schedulers.
#[derive(Debug, Clone)]
pub struct MatrixRecords {
    records: Vec<RunRecord>,
}

impl MatrixRecords {
    /// Wraps records collected elsewhere (e.g. parsed from `repro.json`)
    /// so the figure renderers and shape assertions can query them.
    pub fn from_records(records: Vec<RunRecord>) -> Self {
        MatrixRecords { records }
    }

    /// The raw records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Looks up one run.
    pub fn get(&self, workload: &str, model: &str, scheduler: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.launch_model == model && r.scheduler == scheduler)
    }

    /// Workload names in run order (deduplicated).
    pub fn workloads(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.records {
            if !names.contains(&r.workload) {
                names.push(r.workload.clone());
            }
        }
        names
    }

    /// IPC of a run normalized to the round-robin baseline of the same
    /// workload and launch model.
    ///
    /// Returns `None` when the matrix holds no round-robin record for
    /// that workload/model (an incomplete matrix); silently normalizing
    /// to the run itself would fabricate a 1.0x "gain".
    pub fn normalized_ipc(&self, r: &RunRecord) -> Option<f64> {
        let base = self.get(&r.workload, &r.launch_model, SchedulerKind::RoundRobin.name())?.ipc;
        if base == 0.0 {
            Some(0.0)
        } else {
            Some(r.ipc / base)
        }
    }
}

/// Runs the full evaluation matrix at a scale on all available cores.
/// See [`run_matrix_with_jobs`].
///
/// # Panics
///
/// Panics if any simulation fails (the suite is validated by tests).
pub fn run_matrix(scale: Scale) -> MatrixRecords {
    run_matrix_with_jobs(scale, crate::sweep::default_jobs())
}

/// Runs the full evaluation matrix at a scale on `jobs` workers,
/// printing progress to stderr. The result order (and every number) is
/// deterministic regardless of job count and thread scheduling.
///
/// # Panics
///
/// Panics if any simulation fails (the suite is validated by tests).
pub fn run_matrix_with_jobs(scale: Scale, jobs: usize) -> MatrixRecords {
    // Locality provenance is observational (cycle counts are bit-identical
    // either way), so the matrix always profiles: the figures stay the same
    // and the locality section / shape assertions get their data.
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.profile_locality = true;
    let outcome = crate::sweep::run_matrix_jobs(scale, 0, jobs, &cfg);
    if let Some(f) = outcome.failures.first() {
        panic!("{} under {}/{} failed: {}", f.workload, f.launch_model, f.scheduler, f.error);
    }
    MatrixRecords { records: outcome.records }
}

/// Table I: the simulated GPU configuration.
pub fn table1() -> String {
    let cfg = GpuConfig::kepler_k20c();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["SMXs".to_string(), cfg.num_smxs.to_string()]);
    t.row(vec!["threads / SMX".to_string(), cfg.max_threads_per_smx.to_string()]);
    t.row(vec!["TBs / SMX".to_string(), cfg.max_tbs_per_smx.to_string()]);
    t.row(vec!["registers / SMX".to_string(), cfg.max_regs_per_smx.to_string()]);
    t.row(vec!["shared memory / SMX".to_string(), format!("{} KB", cfg.max_smem_per_smx / 1024)]);
    t.row(vec!["L1 cache / SMX".to_string(), format!("{} KB", cfg.l1_bytes / 1024)]);
    t.row(vec!["L2 cache".to_string(), format!("{} KB", cfg.l2_bytes / 1024)]);
    t.row(vec!["cache line".to_string(), format!("{} bytes", cfg.line_bytes)]);
    t.row(vec!["max concurrent kernels".to_string(), cfg.max_concurrent_kernels.to_string()]);
    t.row(vec!["warp scheduler".to_string(), "greedy-then-oldest".to_string()]);
    format!("Table I: GPGPU configuration (Kepler K20c)\n{}", t.render())
}

/// Table II: the benchmark suite.
pub fn table2(scale: Scale) -> String {
    let mut t = Table::new(vec!["application", "input", "parent TBs", "device launches"]);
    for w in suite(scale) {
        let hk = w.host_kernels();
        let parent_tbs: u32 = hk.iter().map(|k| k.num_tbs).sum();
        let launches: usize = hk
            .iter()
            .flat_map(|k| (0..k.num_tbs).map(move |tb| (k.kind, k.param, tb)))
            .map(|(kind, param, tb)| w.tb_program(kind, param, tb).launches().count())
            .sum();
        t.row(vec![w.name().to_string(), w.input(), parent_tbs.to_string(), launches.to_string()]);
    }
    format!("Table II: benchmarks ({scale} scale)\n{}", t.render())
}

/// Figure 2: shared footprint ratios for parent-child and child-sibling
/// TBs (plus the parent-parent baseline quoted in the text). The
/// per-workload analyses fan out over `jobs` workers.
pub fn fig2(scale: Scale, jobs: usize) -> String {
    use sim_metrics::FootprintAnalysis;
    let all = suite(scale);
    let summary = FootprintSummary {
        rows: crate::sweep::parallel_map(&all, jobs, |w| FootprintAnalysis::analyze(w.as_ref())),
    };
    let mut t = Table::new(vec![
        "workload",
        "parent-child",
        "child-sibling",
        "parent-parent",
        "launching TBs",
        "child TBs",
    ]);
    for r in &summary.rows {
        t.row(vec![
            r.workload.clone(),
            pct(r.parent_child),
            pct(r.child_sibling),
            pct(r.parent_parent),
            r.launching_tbs.to_string(),
            r.child_tbs.to_string(),
        ]);
    }
    t.row(vec![
        "AVERAGE".to_string(),
        pct(summary.mean_parent_child()),
        pct(summary.mean_child_sibling()),
        pct(summary.mean_parent_parent()),
        String::new(),
        String::new(),
    ]);
    format!(
        "Figure 2: shared footprint ratios ({scale} scale)\n\
         (paper: parent-child avg 38.4%, child-sibling avg 30.5%, parent-parent 9.3%)\n{}",
        t.render()
    )
}

fn hit_rate_figure(
    m: &MatrixRecords,
    title: &str,
    paper_note: &str,
    value: impl Fn(&RunRecord) -> f64,
) -> String {
    let mut out = format!("{title}\n{paper_note}\n");
    for model in LaunchModelKind::all() {
        let mut t = Table::new(vec!["workload", "rr", "tb-pri", "smx-bind", "adaptive-bind"]);
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for w in m.workloads() {
            let mut row = vec![w.clone()];
            for (i, sched) in SchedulerKind::all().iter().enumerate() {
                let v = m.get(&w, model.name(), sched.name()).map(&value).unwrap_or(0.0);
                columns[i].push(v);
                row.push(pct(v));
            }
            t.row(row);
        }
        let mut avg = vec!["AVERAGE".to_string()];
        for col in &columns {
            avg.push(pct(mean(col)));
        }
        t.row(avg);
        out.push_str(&format!("\nlaunch model: {model}\n{}", t.render()));
    }
    out
}

/// Figure 7: L2 cache hit rate per scheduler, CDP and DTBL.
pub fn fig7(m: &MatrixRecords) -> String {
    hit_rate_figure(
        m,
        "Figure 7: L2 cache hit rate",
        "(paper: TB-Pri +6.7% CDP / +8.7% DTBL over RR; binding policies trade \
         some L2 hits for L1 hits)",
        |r| r.l2_hit_rate,
    )
}

/// Figure 8: L1 cache hit rate per scheduler, CDP and DTBL.
pub fn fig8(m: &MatrixRecords) -> String {
    hit_rate_figure(
        m,
        "Figure 8: L1 cache hit rate",
        "(paper: TB-Pri +1.1% CDP / +2.1% DTBL; SMX binding gives the large L1 gains)",
        |r| r.l1_hit_rate,
    )
}

/// Locality provenance: attributes every cache hit to the lineage
/// relation between the TB that installed the line and the TB that hit
/// it. This is the mechanism behind Figures 7–9: the binding policies
/// win *because* children reuse lines their parents installed, not
/// merely alongside that effect.
pub fn locality(m: &MatrixRecords) -> String {
    use gpu_sim::cache::ReuseClass;
    let mut out = String::from(
        "Locality provenance: share of cache hits by installer lineage\n\
         (mechanism behind Figs 7-9: binding raises the parent-child share of L1 hits)\n",
    );
    for model in LaunchModelKind::all() {
        let mut header = vec!["scheduler".to_string()];
        for class in ReuseClass::ALL {
            header.push(format!("l1 {}", class.name()));
        }
        header.push("l2 parent_child".to_string());
        header.push("l2 same-smx".to_string());
        header.push("l1 pc dist".to_string());
        let mut t = Table::new(header);
        for sched in SchedulerKind::all() {
            let locs: Vec<&LocalityRecord> = m
                .records
                .iter()
                .filter(|r| r.launch_model == model.name() && r.scheduler == sched.name())
                .filter_map(|r| r.locality.as_ref())
                .collect();
            let avg = |f: &dyn Fn(&LocalityRecord) -> f64| {
                let vs: Vec<f64> = locs.iter().map(|l| f(l)).collect();
                mean(&vs)
            };
            let mut row = vec![sched.name().to_string()];
            for class in ReuseClass::ALL {
                row.push(pct(avg(&|l| l.l1_share(class))));
            }
            row.push(pct(avg(&|l| l.l2_share(ReuseClass::ParentChild))));
            row.push(pct(avg(&|l| {
                let total = l.l2_same_smx + l.l2_cross_smx;
                if total == 0 {
                    0.0
                } else {
                    l.l2_same_smx as f64 / total as f64
                }
            })));
            row.push(format!("{:.0} cyc", avg(&|l| l.l1_pc_mean_dist)));
            t.row(row);
        }
        out.push_str(&format!("\nlaunch model: {model}\n{}", t.render()));
        // Adaptive-Bind's bound-vs-stolen split: hits pooled over all
        // workloads because single runs can have few stolen child hits.
        let (mut bh, mut bpc, mut sh, mut spc) = (0u64, 0u64, 0u64, 0u64);
        for r in &m.records {
            if r.launch_model == model.name() && r.scheduler == SchedulerKind::AdaptiveBind.name() {
                if let Some(l) = &r.locality {
                    bh += l.bound_hits;
                    bpc += l.bound_parent_child;
                    sh += l.stolen_hits;
                    spc += l.stolen_parent_child;
                }
            }
        }
        let share = |part: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                part as f64 / total as f64
            }
        };
        out.push_str(&format!(
            "adaptive-bind child L1 hits: bound TBs {} parent-child (of {}), \
             stolen TBs {} parent-child (of {})\n",
            pct(share(bpc, bh)),
            bh,
            pct(share(spc, sh)),
            sh,
        ));
    }
    out
}

/// Figure 9: IPC normalized to the round-robin baseline, CDP (a) and
/// DTBL (b).
pub fn fig9(m: &MatrixRecords) -> String {
    let mut out = String::from(
        "Figure 9: IPC normalized to RR\n(paper: TB-Pri +4% CDP / +13% DTBL; \
         Adaptive-Bind best overall, ~27% average)\n",
    );
    for (label, model) in [("(a) CDP", LaunchModelKind::Cdp), ("(b) DTBL", LaunchModelKind::Dtbl)] {
        let mut t = Table::new(vec!["workload", "rr", "tb-pri", "smx-bind", "adaptive-bind"]);
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for w in m.workloads() {
            let mut row = vec![w.clone()];
            for (i, sched) in SchedulerKind::all().iter().enumerate() {
                let v = m
                    .get(&w, model.name(), sched.name())
                    .and_then(|r| {
                        let norm = m.normalized_ipc(r);
                        if norm.is_none() {
                            eprintln!(
                                "WARNING: no {} baseline for {w}/{} — omitting \
                                 normalized IPC for {}",
                                SchedulerKind::RoundRobin.name(),
                                model.name(),
                                sched.name()
                            );
                        }
                        norm
                    })
                    .unwrap_or(0.0);
                columns[i].push(v);
                row.push(ratio(v));
            }
            t.row(row);
        }
        let mut avg = vec!["AVERAGE".to_string()];
        for col in &columns {
            avg.push(ratio(mean(col)));
        }
        t.row(avg);
        out.push_str(&format!("\nFigure 9{label}\n{}", t.render()));
    }
    out
}

/// Launch-latency sensitivity (Section IV-D): how the Adaptive-Bind gain
/// decays as the device-launch latency grows. Latency points fan out
/// over `jobs` workers.
pub fn latency_sweep(scale: Scale, jobs: usize) -> String {
    let cfg = GpuConfig::kepler_k20c();
    let all = suite(scale);
    let w: &Arc<dyn Workload> =
        all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let mut t =
        Table::new(vec!["launch latency", "rr IPC", "adaptive IPC", "gain", "child wait (rr)"]);
    let bases = [0u32, 500, 1000, 2000, 4000, 8000, 16000];
    let rows = crate::sweep::parallel_map(&bases, jobs, |&base| {
        let latency = LaunchLatency::uniform(base);
        let rr =
            run_with_latency(w, LaunchModelKind::Dtbl, latency, SchedulerKind::RoundRobin, &cfg)
                .expect("rr run");
        let ad =
            run_with_latency(w, LaunchModelKind::Dtbl, latency, SchedulerKind::AdaptiveBind, &cfg)
                .expect("adaptive run");
        (rr, ad)
    });
    for (base, (rr, ad)) in bases.iter().zip(rows) {
        t.row(vec![
            base.to_string(),
            format!("{:.1}", rr.ipc),
            format!("{:.1}", ad.ipc),
            ratio(ad.ipc / rr.ipc),
            format!("{:.0}", rr.mean_child_wait),
        ]);
    }
    format!(
        "Launch-latency sensitivity on bfs-citation, DTBL delivery ({scale} scale)\n\
         (Section IV-D: long launch latency erodes the exploitable locality)\n{}",
        t.render()
    )
}

/// Overhead analysis (Section IV-E): queue hardware budget and observed
/// dynamic overheads. The per-workload runs fan out over `jobs` workers.
pub fn overhead(scale: Scale, jobs: usize) -> String {
    let cfg = GpuConfig::kepler_k20c();
    let all = suite(scale);
    let mut out = String::from(
        "Overhead analysis (Section IV-E)\n\
         Hardware budget: 3 KB SRAM per SMX = 128 entries x 24 B (~1% of \
         register file + shared memory area); shared queue 0: 768 B (32 x 24 B).\n\n",
    );
    let mut t = Table::new(vec![
        "workload",
        "queue pushes",
        "onchip overflows",
        "max depth",
        "search cycles",
        "steals",
    ]);
    let names = ["bfs-citation", "amr", "join-gaussian", "regx-strings"];
    let heavy: Vec<&Arc<dyn Workload>> =
        names.iter().filter_map(|name| all.iter().find(|w| w.full_name() == *name)).collect();
    let recs = crate::sweep::parallel_map(&heavy, jobs, |w| {
        run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg).expect("overhead run")
    });
    for rec in recs {
        t.row(vec![
            rec.workload.clone(),
            rec.queue_pushes.to_string(),
            rec.queue_overflows.to_string(),
            rec.max_queue_depth.to_string(),
            rec.queue_search_cycles.to_string(),
            rec.steals.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Input-seed variance: the headline gain measured over several
/// independently generated input instances (mean ± sample std), showing
/// the result is a property of the input *structure*, not of one lucky
/// instance. The (workload, seed) grid fans out over `jobs` workers.
pub fn variance(scale: Scale, jobs: usize) -> String {
    use sim_metrics::report::mean_std;
    use workloads::suite_seeded;

    let cfg = GpuConfig::kepler_k20c();
    let seeds: [u64; 5] = [0, 11, 2025, 424242, 7_777_777];
    let names = ["bfs-citation", "bfs-graph500", "join-gaussian", "regx-strings"];
    let mut out =
        format!("Input-seed variance over {} instances, DTBL ({scale} scale)\n\n", seeds.len());
    let mut t = Table::new(vec!["workload", "adaptive gain over rr (mean ± std)"]);
    let cells: Vec<(&str, u64)> =
        names.iter().flat_map(|&name| seeds.iter().map(move |&seed| (name, seed))).collect();
    let gains = crate::sweep::parallel_map(&cells, jobs, |&(name, seed)| {
        let all = suite_seeded(scale, seed);
        let w = all.iter().find(|w| w.full_name() == name).expect("workload");
        let rr =
            run_once(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).expect("rr run");
        let ad = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg)
            .expect("adaptive run");
        ad.ipc / rr.ipc
    });
    for (i, name) in names.iter().enumerate() {
        let (m, s) = mean_std(&gains[i * seeds.len()..(i + 1) * seeds.len()]);
        t.row(vec![name.to_string(), format!("{m:.2}x ± {s:.2}")]);
    }
    out.push_str(&t.render());
    out
}

/// Cache-size sensitivity: how the LaPerm gain depends on L1 and L2
/// capacity (the hardware-parameter study the paper's Section IV-F
/// explicitly leaves to future work). Capacity points fan out over
/// `jobs` workers.
pub fn sweep_cache(scale: Scale, jobs: usize) -> String {
    let all = suite(scale);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let mut out = format!(
        "Cache-size sensitivity on bfs-citation, DTBL ({scale} scale)\n\
         (Section IV-F: the paper leaves cache-size effects to future work)\n\n"
    );

    let pair = |cfg: &GpuConfig| {
        let rr =
            run_once(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, cfg).expect("rr run");
        let ad = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, cfg)
            .expect("adaptive run");
        (rr, ad)
    };

    let l1_kbs = [16u32, 32, 48, 64];
    let mut t = Table::new(vec!["L1 per SMX", "rr IPC", "adaptive IPC", "gain"]);
    let rows = crate::sweep::parallel_map(&l1_kbs, jobs, |&kb| {
        let mut cfg = GpuConfig::kepler_k20c();
        cfg.l1_bytes = kb * 1024;
        pair(&cfg)
    });
    for (kb, (rr, ad)) in l1_kbs.iter().zip(rows) {
        t.row(vec![
            format!("{kb} KB"),
            format!("{:.1}", rr.ipc),
            format!("{:.1}", ad.ipc),
            ratio(ad.ipc / rr.ipc),
        ]);
    }
    out.push_str(&t.render());

    let l2_kbs = [768u32, 1536, 3072, 6144];
    let mut t = Table::new(vec!["L2 total", "rr IPC", "adaptive IPC", "gain"]);
    let rows = crate::sweep::parallel_map(&l2_kbs, jobs, |&kb| {
        let mut cfg = GpuConfig::kepler_k20c();
        cfg.l2_bytes = kb * 1024;
        pair(&cfg)
    });
    for (kb, (rr, ad)) in l2_kbs.iter().zip(rows) {
        t.row(vec![
            format!("{kb} KB"),
            format!("{:.1}", rr.ipc),
            format!("{:.1}", ad.ipc),
            ratio(ad.ipc / rr.ipc),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out
}

/// Architecture generality: the Kepler config of Table I vs a
/// Maxwell-like machine (more, narrower SMs; bigger L2).
pub fn generality(scale: Scale, jobs: usize) -> String {
    use sim_metrics::report::bar_chart;
    let all = suite(scale);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let mut out = format!("Architecture generality on bfs-citation, DTBL ({scale} scale)\n\n");
    let machines =
        [("kepler-k20c", GpuConfig::kepler_k20c()), ("maxwell-like", GpuConfig::maxwell_like())];
    let results = crate::sweep::parallel_map(&machines, jobs, |(_, cfg)| {
        let rr =
            run_once(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, cfg).expect("rr run");
        let ad = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, cfg)
            .expect("adaptive run");
        (rr, ad)
    });
    let mut bars = Vec::new();
    for ((name, _), (rr, ad)) in machines.iter().zip(results) {
        bars.push((format!("{name} rr"), rr.ipc));
        bars.push((format!("{name} adaptive"), ad.ipc));
    }
    out.push_str(&bar_chart(&bars, 40));
    out.push_str("\nThe LaPerm gain survives the architecture change (Section II).\n");
    out
}

/// Timeline: windowed IPC and L1 hit rate over the run, RR vs
/// Adaptive-Bind, showing *when* the locality benefit materializes (the
/// parent/child overlap phase).
pub fn timeline(scale: Scale, jobs: usize) -> String {
    use sim_metrics::timeline::{downsample, run_timeline};
    let cfg = GpuConfig::kepler_k20c();
    let all = suite(scale);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let mut out =
        format!("Timeline: windowed IPC / L1 hit rate on bfs-citation, DTBL ({scale} scale)\n\n");
    let scheds = [SchedulerKind::RoundRobin, SchedulerKind::AdaptiveBind];
    let traces = crate::sweep::parallel_map(&scheds, jobs, |&sched| {
        run_timeline(w, LaunchModelKind::Dtbl, sched, &cfg, 2000).expect("timeline run")
    });
    for (sched, points) in scheds.iter().zip(traces) {
        let mut t = Table::new(vec!["cycle", "IPC", "L1 hit", "L2 hit", "resident", "queued"]);
        for p in downsample(&points, 16) {
            t.row(vec![
                p.cycle.to_string(),
                format!("{:.1}", p.ipc),
                pct(p.l1_hit_rate),
                pct(p.l2_hit_rate),
                p.resident_tbs.to_string(),
                p.undispatched_tbs.to_string(),
            ]);
        }
        out.push_str(&format!("{sched}\n{}\n", t.render()));
    }
    out
}

/// Design-choice ablations: nesting clamp `L`, SMX cluster size, steal
/// hysteresis, and the DTBL on-chip table capacity. Each ablation's
/// points fan out over `jobs` workers.
pub fn ablate(scale: Scale, jobs: usize) -> String {
    use gpu_sim::engine::Simulator;
    use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
    use workloads::SharedSource;

    let cfg = GpuConfig::kepler_k20c();
    let all = suite(scale);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");

    let run = |laperm_cfg: LaPermConfig, policy: LaPermPolicy, table_cap: Option<usize>| -> f64 {
        let launch = match table_cap {
            Some(cap) => Box::new(DtblModel::with_table(
                LaunchLatency::default_for(LaunchModelKind::Dtbl),
                cap,
                DtblModel::DEFAULT_OVERFLOW_PENALTY,
            )) as Box<dyn gpu_sim::launch::DynamicLaunchModel>,
            None => LaunchModelKind::Dtbl.build_default(),
        };
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
            .with_scheduler(Box::new(LaPermScheduler::new(policy, laperm_cfg)))
            .with_launch_model(launch);
        for hk in w.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
        }
        sim.run_to_completion().expect("ablation run").ipc()
    };

    let base_cfg = LaPermConfig::for_gpu(&cfg);
    let mut out = format!("Design-choice ablations, DTBL ({scale} scale)\n\n");

    // The nesting clamp only matters on a workload that actually nests:
    // AMR refines recursively (depth 2).
    let amr = all.iter().find(|w| w.full_name() == "amr").expect("amr in suite");
    let run_on = |w: &Arc<dyn Workload>, laperm_cfg: LaPermConfig| -> f64 {
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
            .with_scheduler(Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, laperm_cfg)))
            .with_launch_model(LaunchModelKind::Dtbl.build_default());
        for hk in w.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
        }
        sim.run_to_completion().expect("ablation run").ipc()
    };
    let mut t = Table::new(vec!["max nesting level L (amr)", "adaptive-bind IPC"]);
    let levels = [1u8, 2, 4, 8];
    let ipcs = crate::sweep::parallel_map(&levels, jobs, |&level| {
        run_on(amr, base_cfg.with_max_level(level))
    });
    for (level, ipc) in levels.iter().zip(ipcs) {
        t.row(vec![level.to_string(), format!("{ipc:.1}")]);
    }
    out.push_str(&t.render());
    out.push_str("\nbfs-citation sweeps:\n");

    let mut t = Table::new(vec!["SMX cluster size", "smx-bind IPC"]);
    let clusters = [1u16, 2, 4];
    let ipcs = crate::sweep::parallel_map(&clusters, jobs, |&cluster| {
        run(base_cfg.with_cluster_size(cluster), LaPermPolicy::SmxBind, None)
    });
    for (cluster, ipc) in clusters.iter().zip(ipcs) {
        t.row(vec![cluster.to_string(), format!("{ipc:.1}")]);
    }
    out.push('\n');
    out.push_str(&t.render());

    let mut t = Table::new(vec!["steal min free slots", "adaptive-bind IPC"]);
    let slot_counts = [0u32, 4, 8, 16];
    let ipcs = crate::sweep::parallel_map(&slot_counts, jobs, |&slots| {
        run(base_cfg.with_steal_min_free_slots(slots), LaPermPolicy::AdaptiveBind, None)
    });
    for (slots, ipc) in slot_counts.iter().zip(ipcs) {
        t.row(vec![slots.to_string(), format!("{ipc:.1}")]);
    }
    out.push('\n');
    out.push_str(&t.render());

    let mut t = Table::new(vec!["DTBL on-chip table entries", "adaptive-bind IPC"]);
    let caps = [8usize, 32, 128, 512];
    let ipcs = crate::sweep::parallel_map(&caps, jobs, |&cap| {
        run(base_cfg, LaPermPolicy::AdaptiveBind, Some(cap))
    });
    for (cap, ipc) in caps.iter().zip(ipcs) {
        t.row(vec![cap.to_string(), format!("{ipc:.1}")]);
    }
    out.push('\n');
    out.push_str(&t.render());

    // Mechanism decomposition: how much of the gain is *when* children
    // run (prioritization) vs *where* they run (binding)?
    {
        use laperm::BindOnlyScheduler;
        let run_custom = |sched: Box<dyn gpu_sim::tb_sched::TbScheduler>| -> f64 {
            let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
                .with_scheduler(sched)
                .with_launch_model(LaunchModelKind::Dtbl.build_default());
            for hk in w.host_kernels() {
                sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
            }
            sim.run_to_completion().expect("decomposition run").ipc()
        };
        let mechanisms =
            ["neither (rr)", "priority only (tb-pri)", "binding only", "both (smx-bind)"];
        let ipcs = crate::sweep::parallel_map(&[0usize, 1, 2, 3], jobs, |&i| match i {
            0 => run_custom(Box::new(gpu_sim::tb_sched::RoundRobinScheduler::new())),
            1 => run(base_cfg, LaPermPolicy::TbPri, None),
            2 => run_custom(Box::new(BindOnlyScheduler::new())),
            _ => run(base_cfg, LaPermPolicy::SmxBind, None),
        });
        let mut t = Table::new(vec!["mechanisms", "IPC"]);
        for (label, ipc) in mechanisms.iter().zip(ipcs) {
            t.row(vec![label.to_string(), format!("{ipc:.1}")]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    // Contention-aware TB throttling (Section IV-F's suggested
    // combination with prior work): cap resident TBs per SMX.
    let mut t = Table::new(vec!["TB throttle / SMX", "adaptive-bind IPC"]);
    let throttles = [4u32, 8, 12, 16];
    let ipcs = crate::sweep::parallel_map(&throttles, jobs, |&throttle| {
        run(base_cfg.with_throttle_tbs(throttle), LaPermPolicy::AdaptiveBind, None)
    });
    for (&throttle, ipc) in throttles.iter().zip(ipcs) {
        let label = if throttle >= cfg.max_tbs_per_smx {
            format!("{throttle} (= hw limit)")
        } else {
            throttle.to_string()
        };
        t.row(vec![label, format!("{ipc:.1}")]);
    }
    out.push('\n');
    out.push_str(&t.render());

    // Orthogonality to the warp scheduler (paper Section IV-F): the
    // LaPerm gain should survive swapping GTO for loose round-robin.
    let mut t = Table::new(vec!["warp scheduler", "rr IPC", "adaptive IPC", "gain"]);
    let policies = [gpu_sim::config::WarpSchedPolicy::Gto, gpu_sim::config::WarpSchedPolicy::Lrr];
    let results = crate::sweep::parallel_map(&policies, jobs, |&policy| {
        let mut warp_cfg = cfg.clone();
        warp_cfg.warp_scheduler = policy;
        let rr = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &warp_cfg)
            .expect("rr run");
        let ad = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &warp_cfg)
            .expect("adaptive run");
        (rr, ad)
    });
    for (policy, (rr, ad)) in policies.iter().zip(results) {
        t.row(vec![
            policy.to_string(),
            format!("{:.1}", rr.ipc),
            format!("{:.1}", ad.ipc),
            ratio(ad.ipc / rr.ipc),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out
}

/// Launch-path saturation sweep: IPC versus the DTBL aggregation-table
/// size, per scheduler, on the launch-heaviest suite workload. Shrinking
/// the table below the working set forces every extra launch through the
/// overflow penalty, so this shows where each scheduler's gain survives a
/// saturated launch path and where it collapses. Not part of the `all`
/// report (the golden predates it); run `repro saturation`.
pub fn saturation(scale: Scale, jobs: usize) -> String {
    use gpu_sim::engine::Simulator;
    use workloads::SharedSource;

    let cfg = GpuConfig::kepler_k20c();
    let all = suite(scale);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");

    let caps = [8usize, 16, 32, 64, 128, 256];
    let scheds = SchedulerKind::all();
    let cells: Vec<(usize, SchedulerKind)> =
        caps.iter().flat_map(|&cap| scheds.iter().map(move |&s| (cap, s))).collect();
    let results = crate::sweep::parallel_map(&cells, jobs, |&(cap, sched)| {
        let launch = Box::new(DtblModel::with_table(
            LaunchLatency::default_for(LaunchModelKind::Dtbl),
            cap,
            DtblModel::DEFAULT_OVERFLOW_PENALTY,
        ));
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
            .with_scheduler(sched.build(&cfg))
            .with_launch_model(launch);
        for hk in w.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
        }
        let stats = sim.run_to_completion().expect("saturation run");
        let overflows = stats
            .launch_counters
            .iter()
            .find(|(k, _)| *k == "dtbl_table_overflows")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        (stats.ipc(), overflows)
    });

    let mut out = format!(
        "Launch-path saturation: IPC vs DTBL aggregation-table size on bfs-citation \
         ({scale} scale)\n\n"
    );
    let mut t = Table::new(vec![
        "table entries",
        "rr IPC",
        "tb-pri IPC",
        "smx-bind IPC",
        "adaptive IPC",
        "overflows (adaptive)",
    ]);
    for (ci, &cap) in caps.iter().enumerate() {
        let row = &results[ci * scheds.len()..(ci + 1) * scheds.len()];
        let mut cells = vec![cap.to_string()];
        cells.extend(row.iter().map(|(ipc, _)| format!("{ipc:.1}")));
        let adaptive_ovf = row[scheds.len() - 1].1;
        cells.push(adaptive_ovf.to_string());
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Engine introspection: wake-source decomposition of the simulation
/// loop, pooled per launch model and scheduler. Only simulated-side
/// counters appear here — host wall time is nondeterministic, so it
/// lives in `laperm-trace --engine-profile`, never in a golden-diffed
/// report. Not part of the `all` report (the matrix does not profile
/// the engine and the golden predates it); run `repro profile`.
pub fn profile(m: &MatrixRecords) -> String {
    use gpu_sim::stats::{Pow2Hist, WakeSource};

    let mut out = String::from(
        "Engine introspection: wake-source decomposition of the event loop\n\
         (loop iterations partitioned by what woke the engine; jumps are cycles\n\
         the event engine skipped without work; host time: laperm-trace --engine-profile)\n",
    );
    let profiled = m.records.iter().filter(|r| r.engine.is_some()).count();
    if profiled == 0 {
        out.push_str("\nno engine introspection in these records (run `repro profile`)\n");
        return out;
    }
    for model in LaunchModelKind::all() {
        let mut header = vec!["scheduler".to_string(), "iters".to_string(), "cycles".to_string()];
        header.push("iters/cycle".to_string());
        for src in WakeSource::ALL {
            header.push(src.name().to_string());
        }
        header.push("mean jump".to_string());
        header.push("max jump".to_string());
        let mut t = Table::new(header);
        for sched in SchedulerKind::all() {
            let mut iters = 0u64;
            let mut cycles = 0u64;
            let mut wake = [0u64; gpu_sim::stats::NUM_WAKE_SOURCES];
            let mut jump = Pow2Hist::default();
            for r in &m.records {
                if r.launch_model != model.name() || r.scheduler != sched.name() {
                    continue;
                }
                if let Some(eng) = &r.engine {
                    iters += eng.loop_iterations;
                    cycles += r.cycles;
                    for (w, c) in wake.iter_mut().zip(eng.wake_counts) {
                        *w += c;
                    }
                    jump.merge(&eng.jump_len);
                }
            }
            let mut row = vec![sched.name().to_string(), iters.to_string(), cycles.to_string()];
            row.push(if cycles == 0 {
                "-".to_string()
            } else {
                format!("{:.3}", iters as f64 / cycles as f64)
            });
            for src in WakeSource::ALL {
                let c = wake[src.index()];
                row.push(if iters == 0 { "-".to_string() } else { pct(c as f64 / iters as f64) });
            }
            row.push(if jump.count == 0 { "-".to_string() } else { format!("{:.1}", jump.mean()) });
            row.push(jump.max.to_string());
            t.row(row);
        }
        out.push_str(&format!("\nlaunch model: {model}\n{}", t.render()));
    }

    // Pooled loop-shape histograms across the whole matrix: how deep the
    // event heap runs and how many due events fire per serviced cycle.
    let mut heap = Pow2Hist::default();
    let mut events = Pow2Hist::default();
    for eng in m.records.iter().filter_map(|r| r.engine.as_ref()) {
        heap.merge(&eng.heap_depth);
        events.merge(&eng.events_per_cycle);
    }
    let mut t = Table::new(vec!["distribution", "samples", "mean", "max"]);
    for (name, h) in [("event-heap depth", &heap), ("due events/cycle", &events)] {
        t.row(vec![
            name.to_string(),
            h.count.to_string(),
            format!("{:.2}", h.mean()),
            h.max.to_string(),
        ]);
    }
    out.push_str(&format!("\npooled across {profiled} profiled runs\n{}", t.render()));
    out
}

/// Latency attribution: TB lifecycle decomposition, child queue-wait
/// split by binding outcome and nesting depth, and the launch-DAG
/// critical path — pooled per launch model and scheduler. Not part of
/// the `all` report (the matrix does not profile latency and the golden
/// predates it); run `repro latency`.
pub fn latency_attribution(m: &MatrixRecords) -> String {
    use gpu_sim::stats::Pow2Hist;

    let mut out = String::from(
        "Latency attribution: TB lifecycle decomposition and launch-DAG critical path\n\
         (lifetime = launch path + queue wait + dispatch gap + exec, exact per TB;\n\
         quantiles are pow2-bucket upper bounds clamped to the observed max)\n",
    );
    let profiled = m.records.iter().filter(|r| r.latency.is_some()).count();
    if profiled == 0 {
        out.push_str("\nno latency attribution in these records (run `repro latency`)\n");
        return out;
    }
    let q3 = |h: &Pow2Hist| {
        if h.count == 0 {
            "-".to_string()
        } else {
            format!("{}/{}/{}", h.percentile(0.50), h.percentile(0.95), h.percentile(0.99))
        }
    };
    let q1 = |h: &Pow2Hist| {
        if h.count == 0 {
            "-".to_string()
        } else {
            h.percentile(0.95).to_string()
        }
    };
    for model in LaunchModelKind::all() {
        let mut t = Table::new(vec![
            "scheduler",
            "TBs",
            "lifetime p50/p95/p99",
            "launch p95",
            "queue p95",
            "gap p95",
            "exec p95",
            "child queue p50/p95/p99",
            "bound p95",
            "stolen p95",
        ]);
        for sched in SchedulerKind::all() {
            let mut tbs = 0u64;
            let mut pooled: [Pow2Hist; 8] = Default::default();
            for r in &m.records {
                if r.launch_model != model.name() || r.scheduler != sched.name() {
                    continue;
                }
                if let Some(lat) = &r.latency {
                    tbs += lat.tbs;
                    for (acc, h) in pooled.iter_mut().zip([
                        &lat.lifetime,
                        &lat.launch_path,
                        &lat.queue_wait,
                        &lat.dispatch_gap,
                        &lat.exec,
                        &lat.child_queue_wait,
                        &lat.bound_queue_wait,
                        &lat.stolen_queue_wait,
                    ]) {
                        acc.merge(h);
                    }
                }
            }
            t.row(vec![
                sched.name().to_string(),
                tbs.to_string(),
                q3(&pooled[0]),
                q1(&pooled[1]),
                q1(&pooled[2]),
                q1(&pooled[3]),
                q1(&pooled[4]),
                q3(&pooled[5]),
                q1(&pooled[6]),
                q1(&pooled[7]),
            ]);
        }
        out.push_str(&format!("\nlaunch model: {model}\n{}", t.render()));
    }

    // Queue wait by nesting depth, pooled across the whole matrix: the
    // deeper a TB sits in the launch DAG, the later its batch matures
    // and the longer it queues behind its ancestors' siblings.
    let mut by_depth: std::collections::BTreeMap<u8, Pow2Hist> = std::collections::BTreeMap::new();
    for lat in m.records.iter().filter_map(|r| r.latency.as_ref()) {
        for (depth, h) in &lat.depth_queue_wait {
            by_depth.entry(*depth).or_default().merge(h);
        }
    }
    let mut t = Table::new(vec!["nesting depth", "TBs", "queue wait p50/p95/p99", "mean"]);
    for (depth, h) in &by_depth {
        t.row(vec![depth.to_string(), h.count.to_string(), q3(h), format!("{:.1}", h.mean())]);
    }
    out.push_str(&format!(
        "\nqueue wait by nesting depth (pooled across the matrix)\n{}",
        t.render()
    ));

    // Critical path: the longest parent->child launch chain by retire
    // time, with its cycles split into queueing (creation to first
    // issue) and execution. The queue share is the scheduling-induced
    // critical-path inflation the tentpole claim is about.
    let mut t = Table::new(vec![
        "scheduler",
        "mean len",
        "mean cycles",
        "queue cycles",
        "exec cycles",
        "queue share",
    ]);
    for sched in SchedulerKind::all() {
        let mut n = 0u64;
        let (mut len, mut cycles, mut queue, mut exec) = (0u64, 0u64, 0u64, 0u64);
        for r in &m.records {
            if r.scheduler != sched.name() {
                continue;
            }
            if let Some(lat) = &r.latency {
                n += 1;
                len += u64::from(lat.critical_path_len);
                cycles += lat.critical_path_cycles;
                queue += lat.critical_path_queue;
                exec += lat.critical_path_exec;
            }
        }
        if n == 0 {
            continue;
        }
        t.row(vec![
            sched.name().to_string(),
            format!("{:.1}", len as f64 / n as f64),
            format!("{:.0}", cycles as f64 / n as f64),
            queue.to_string(),
            exec.to_string(),
            pct(queue as f64 / (queue + exec).max(1) as f64),
        ]);
    }
    out.push_str(&format!(
        "\ncritical path (pooled over both launch models, {profiled} profiled runs)\n{}",
        t.render()
    ));
    out
}

/// The complete `repro latency` text report: the Section IV-D
/// launch-latency sensitivity sweep followed by the lifecycle
/// attribution tables over a latency-profiled matrix (`m` must come
/// from a profiled build, e.g. [`crate::sweep::SweepDoc::build_profiled`]).
/// `tests/repro_snapshot.rs` diffs this byte-for-byte against the
/// checked-in ci-scale golden.
pub fn latency_report(scale: Scale, jobs: usize, m: &MatrixRecords) -> String {
    format!("{}\n\n{}", latency_sweep(scale, jobs), latency_attribution(m))
}

/// The complete `repro all` text report: every section in order, each
/// followed by a blank line. The `repro` binary prints exactly this
/// string, and `tests/repro_snapshot.rs` diffs it byte-for-byte against
/// the checked-in ci-scale golden — one definition, no drift.
pub fn full_report(scale: Scale, jobs: usize, m: &MatrixRecords) -> String {
    let sections = [
        table1(),
        table2(scale),
        fig2(scale, jobs),
        crate::figure4(),
        fig7(m),
        fig8(m),
        fig9(m),
        locality(m),
        latency_sweep(scale, jobs),
        timeline(scale, jobs),
        variance(scale, jobs),
        sweep_cache(scale, jobs),
        generality(scale, jobs),
        overhead(scale, jobs),
        ablate(scale, jobs),
    ];
    let mut out = String::new();
    for s in sections {
        out.push_str(&s);
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn record(workload: &str, model: &str, scheduler: &str, ipc: f64) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            launch_model: model.to_string(),
            scheduler: scheduler.to_string(),
            cycles: 1000,
            ipc,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.5,
            child_l1_hit_rate: 0.5,
            mean_child_wait: 0.0,
            parent_smx_affinity: 0.0,
            smx_utilization: 0.5,
            load_imbalance: 1.0,
            dynamic_tbs: 0,
            total_tbs: 1,
            steals: 0,
            queue_overflows: 0,
            queue_pushes: 0,
            max_queue_depth: 0,
            queue_search_cycles: 0,
            table_overflows: 0,
            stalls: Default::default(),
            locality: None,
            engine: None,
            latency: None,
            host: Default::default(),
        }
    }

    #[test]
    fn normalized_ipc_uses_rr_baseline() {
        let rr_name = SchedulerKind::RoundRobin.name();
        let m = MatrixRecords {
            records: vec![
                record("bfs", "dtbl", rr_name, 10.0),
                record("bfs", "dtbl", "adaptive-bind", 25.0),
            ],
        };
        let r = m.get("bfs", "dtbl", "adaptive-bind").unwrap();
        assert_eq!(m.normalized_ipc(r), Some(2.5));
        // The baseline normalizes to exactly 1.
        let base = m.get("bfs", "dtbl", rr_name).unwrap();
        assert_eq!(m.normalized_ipc(base), Some(1.0));
    }

    #[test]
    fn normalized_ipc_without_baseline_is_none() {
        // No round-robin record for this workload/model: the gap must be
        // reported, not silently normalized to 1.0.
        let m = MatrixRecords { records: vec![record("bfs", "dtbl", "adaptive-bind", 25.0)] };
        let r = m.get("bfs", "dtbl", "adaptive-bind").unwrap();
        assert_eq!(m.normalized_ipc(r), None);
    }

    #[test]
    fn normalized_ipc_zero_baseline_is_zero() {
        let m = MatrixRecords {
            records: vec![
                record("bfs", "cdp", SchedulerKind::RoundRobin.name(), 0.0),
                record("bfs", "cdp", "tb-pri", 5.0),
            ],
        };
        let r = m.get("bfs", "cdp", "tb-pri").unwrap();
        assert_eq!(m.normalized_ipc(r), Some(0.0));
    }
}
